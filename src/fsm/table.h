// The paper's *formal* protocol description: a Mealy machine given as a
// transition table MM = (Q, Sigma, Omega, delta, lambda, q0), where output
// routines are concatenations of the seven simple functions of Section 3
// (pop, push, except, change, return, plus disable/enable).
//
// The Write-Through client and sequencer tables (the paper's Tables 1-3)
// are provided by write_through_client_table() / write_through_sequencer_
// table(); TableMachine interprets any such table.  The hand-written
// protocol machines in src/protocols are validated against this formal
// model in the test suite.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "fsm/mealy.h"

namespace drsm::fsm {

/// One primitive step of an output routine.
struct Action {
  enum class Kind {
    kPopRead,      // pop(parameters_r): consume read parameters
    kPopWrite,     // pop(parameters_w): stash the write parameters
    kPopUserInfo,  // pop(user_information): install value+version from msg
    kChange,       // change(parameters_w, user_information): apply the write
                   // and draw the next global sequence number
    kChangeFromMessage,  // apply value+version carried by the message if it
                         // is at least as new (update protocols)
    kApplyPendingLocal,  // apply the stashed write locally, version as-is
    kApplyPendingWithMsgVersion,  // apply the stashed write with the
                                  // sequence number the grant carries
    kReturn,       // return(parameters_r, user_information)
    kPush,         // push(destination, token [, parameters])
    kDisable,      // disable the local queue
    kEnable,       // enable the local queue
    kCompleteWrite,  // signal write completion to the application
    kCompleteOp,     // signal eject/sync completion
  };

  /// Destination of a kPush.
  enum class Dest {
    kHome,        // the sequencer node
    kInitiator,   // the message token's operation-initiator
    kExceptHome,  // the paper's except(N+1): all nodes but the sequencer
    kExceptInitiatorAndHome,  // except(k, N+1)
  };

  Kind kind = Kind::kReturn;

  // kPush fields; the pushed token's initiator is forwarded from the input
  // message (which is how the paper's tables use it throughout).
  Dest dest = Dest::kHome;
  MsgType push_type = MsgType::kReadPer;
  ParamPresence push_params = ParamPresence::kNone;
  // The pushed message reserves and carries the next global sequence
  // number (the WTV sequencer's slot-reserving grant).
  bool reserve_version = false;
  // The pushed message carries the machine's current version (e.g. the
  // Firefly completion token).
  bool carry_version = false;

  static Action simple(Kind kind) { return Action{kind, {}, {}, {}}; }
  static Action push(Dest dest, MsgType type, ParamPresence params,
                     bool reserve_version = false,
                     bool carry_version = false) {
    return Action{Kind::kPush, dest, type, params, reserve_version,
                  carry_version};
  }
};

using Routine = std::vector<Action>;

/// delta and lambda packed per (state, input-token-type) cell.
struct TableEntry {
  int next_state = 0;
  Routine routine;
};

/// A complete formal machine description.
class TransitionTable {
 public:
  TransitionTable(std::vector<std::string> state_names, int start_state);

  void add(int state, MsgType input, TableEntry entry);

  /// Looks up delta/lambda; entries the paper marks "error" are absent and
  /// trip a DRSM_CHECK when exercised.
  const TableEntry& at(int state, MsgType input) const;
  bool contains(int state, MsgType input) const;

  int start_state() const { return start_state_; }
  int num_states() const { return static_cast<int>(state_names_.size()); }
  const std::string& state_name(int s) const;

  /// Introspection for the model checker and the drsm_check CLI: the input
  /// token types with a defined transition out of `state`, in MsgType
  /// order.  Everything else is a paper-"error" cell that trips a
  /// DRSM_CHECK when exercised.
  std::vector<MsgType> defined_inputs(int state) const;

  /// Total number of defined (state, input) cells.
  std::size_t num_entries() const { return entries_.size(); }

 private:
  std::vector<std::string> state_names_;
  int start_state_;
  std::map<std::pair<int, MsgType>, TableEntry> entries_;
};

/// Interprets a TransitionTable as a live protocol process.
class TableMachine : public ProtocolMachine {
 public:
  explicit TableMachine(const TransitionTable* table);

  void on_message(MachineContext& ctx, const Message& msg) override;
  std::unique_ptr<ProtocolMachine> clone() const override;
  void encode(std::vector<std::uint8_t>& out) const override;
  bool decode(const std::uint8_t*& p, const std::uint8_t* end) override;
  const char* state_name() const override;

  int state() const { return state_; }

 private:
  const TransitionTable* table_;  // not owned; tables are immutable statics
  int state_;
  // User-information part of the copy and the transient pop() stash.
  std::uint64_t value_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t pending_write_ = 0;
};

/// The paper's Table 1/2: Write-Through client machine (states INVALID,
/// VALID; start INVALID).
const TransitionTable& write_through_client_table();

/// The paper's Table 3: Write-Through sequencer machine (single state
/// VALID).
const TransitionTable& write_through_sequencer_table();

/// The same formal paradigm applied to the other protocols the tables can
/// express without internal buffering (the paper: "this model serves as a
/// modeling paradigm for other coherence protocols").
const TransitionTable& write_through_v_client_table();
const TransitionTable& write_through_v_sequencer_table();
const TransitionTable& dragon_client_table();
const TransitionTable& dragon_sequencer_table();
const TransitionTable& firefly_client_table();
const TransitionTable& firefly_sequencer_table();

}  // namespace drsm::fsm
