#include "fsm/token.h"

#include "support/text.h"

namespace drsm::fsm {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kReadReq: return "R-REQ";
    case MsgType::kWriteReq: return "W-REQ";
    case MsgType::kReadPer: return "R-PER";
    case MsgType::kWritePer: return "W-PER";
    case MsgType::kReadGnt: return "R-GNT";
    case MsgType::kWriteGnt: return "W-GNT";
    case MsgType::kWriteData: return "W-DATA";
    case MsgType::kInval: return "W-INV";
    case MsgType::kUpdate: return "W-UPD";
    case MsgType::kRecallShared: return "RECALL-S";
    case MsgType::kRecallInval: return "RECALL-I";
    case MsgType::kFlushData: return "FLUSH-D";
    case MsgType::kFlushClean: return "FLUSH-C";
    case MsgType::kNack: return "NACK";
    case MsgType::kAck: return "ACK";
    case MsgType::kOwnerXfer: return "OWN-XFER";
    case MsgType::kEject: return "EJECT";
    case MsgType::kSyncReq: return "SYNC-REQ";
    case MsgType::kSyncAck: return "SYNC-ACK";
  }
  return "?";
}

const char* to_string(ParamPresence params) {
  switch (params) {
    case ParamPresence::kNone: return "0";
    case ParamPresence::kReadParams: return "r";
    case ParamPresence::kWriteParams: return "w";
    case ParamPresence::kUserInfo: return "ui";
  }
  return "?";
}

const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kEject: return "eject";
    case OpKind::kSync: return "sync";
  }
  return "?";
}

std::string Message::debug_string() const {
  return strfmt("(%s, i=%u, j=%u, %s, %s) value=%llu version=%llu",
                to_string(token.type), token.initiator, token.object,
                token.queue == QueueKind::kLocal ? "l" : "d",
                to_string(token.params),
                static_cast<unsigned long long>(value),
                static_cast<unsigned long long>(version));
}

}  // namespace drsm::fsm
