#include "fsm/table.h"

#include "support/text.h"

namespace drsm::fsm {

TransitionTable::TransitionTable(std::vector<std::string> state_names,
                                 int start_state)
    : state_names_(std::move(state_names)), start_state_(start_state) {
  DRSM_CHECK(!state_names_.empty(), "table needs at least one state");
  DRSM_CHECK(start_state_ >= 0 && start_state_ < num_states(),
             "start state out of range");
}

void TransitionTable::add(int state, MsgType input, TableEntry entry) {
  DRSM_CHECK(state >= 0 && state < num_states(), "state out of range");
  DRSM_CHECK(entry.next_state >= 0 && entry.next_state < num_states(),
             "next state out of range");
  const bool inserted =
      entries_.emplace(std::make_pair(state, input), std::move(entry)).second;
  DRSM_CHECK(inserted, "duplicate table entry");
}

const TableEntry& TransitionTable::at(int state, MsgType input) const {
  auto it = entries_.find({state, input});
  DRSM_CHECK(it != entries_.end(),
             strfmt("protocol error: no transition from state %s on %s",
                    state_name(state).c_str(), to_string(input)));
  return it->second;
}

bool TransitionTable::contains(int state, MsgType input) const {
  return entries_.count({state, input}) != 0;
}

const std::string& TransitionTable::state_name(int s) const {
  DRSM_CHECK(s >= 0 && s < num_states(), "state out of range");
  return state_names_[static_cast<std::size_t>(s)];
}

std::vector<MsgType> TransitionTable::defined_inputs(int state) const {
  DRSM_CHECK(state >= 0 && state < num_states(), "state out of range");
  std::vector<MsgType> inputs;
  for (const auto& [key, entry] : entries_) {
    (void)entry;
    if (key.first == state) inputs.push_back(key.second);
  }
  return inputs;
}

TableMachine::TableMachine(const TransitionTable* table)
    : table_(table), state_(table->start_state()) {}

void TableMachine::on_message(MachineContext& ctx, const Message& msg) {
  const TableEntry& entry = table_->at(state_, msg.token.type);

  for (const Action& action : entry.routine) {
    switch (action.kind) {
      case Action::Kind::kPopRead:
        // Read parameters select what to read; our model reads the whole
        // user-information value, so there is nothing to stash.
        break;
      case Action::Kind::kPopWrite:
        pending_write_ = msg.value;
        break;
      case Action::Kind::kPopUserInfo:
        value_ = msg.value;
        version_ = msg.version;
        break;
      case Action::Kind::kChange:
        value_ = pending_write_;
        version_ = ctx.next_version();
        ctx.commit_write(version_, value_);
        break;
      case Action::Kind::kChangeFromMessage:
        if (msg.version >= version_) {
          value_ = msg.value;
          version_ = msg.version;
        }
        break;
      case Action::Kind::kApplyPendingLocal:
        value_ = pending_write_;
        break;
      case Action::Kind::kApplyPendingWithMsgVersion:
        value_ = pending_write_;
        version_ = msg.version;
        ctx.commit_write(version_, value_);
        break;
      case Action::Kind::kReturn:
        ctx.return_read(value_, version_);
        break;
      case Action::Kind::kDisable:
        ctx.disable_local_queue();
        break;
      case Action::Kind::kEnable:
        ctx.enable_local_queue();
        break;
      case Action::Kind::kCompleteWrite:
        ctx.complete_write(version_);
        break;
      case Action::Kind::kCompleteOp:
        ctx.complete_op();
        break;
      case Action::Kind::kPush: {
        Message out;
        out.token.type = action.push_type;
        out.token.initiator = msg.token.initiator;
        out.token.object = msg.token.object;
        out.token.queue = QueueKind::kDistributed;
        out.token.params = action.push_params;
        if (action.push_params == ParamPresence::kWriteParams) {
          out.value = pending_write_;
          out.version = version_;
        } else if (action.push_params == ParamPresence::kUserInfo) {
          out.value = value_;
          out.version = version_;
        }
        if (action.carry_version) out.version = version_;
        if (action.reserve_version) out.version = ctx.next_version();
        switch (action.dest) {
          case Action::Dest::kHome:
            ctx.send(ctx.home(), out);
            break;
          case Action::Dest::kInitiator:
            ctx.send(msg.token.initiator, out);
            break;
          case Action::Dest::kExceptHome:
            ctx.send_except({ctx.home()}, out);
            break;
          case Action::Dest::kExceptInitiatorAndHome:
            ctx.send_except({msg.token.initiator, ctx.home()}, out);
            break;
        }
        break;
      }
    }
  }
  state_ = entry.next_state;
}

std::unique_ptr<ProtocolMachine> TableMachine::clone() const {
  return std::make_unique<TableMachine>(*this);
}

void TableMachine::encode(std::vector<std::uint8_t>& out) const {
  out.push_back(static_cast<std::uint8_t>(state_));
}

bool TableMachine::decode(const std::uint8_t*& p, const std::uint8_t* end) {
  DRSM_CHECK(p < end, "decode: truncated state key");
  const int state = static_cast<int>(*p++);
  DRSM_CHECK(state >= 0 && state < table_->num_states(),
             "decode: state out of range for this table");
  state_ = state;
  return true;
}

const char* TableMachine::state_name() const {
  return table_->state_name(state_).c_str();
}

// ---------------------------------------------------------------------------
// Write-Through formal tables (the paper's Tables 1-3 and Figure 1).
// Client states: 0 = INVALID (start), 1 = VALID.
// ---------------------------------------------------------------------------

const TransitionTable& write_through_client_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"INVALID", "VALID"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;
    const int kInvalid = 0, kValid = 1;

    // Read request on a VALID copy: executed locally (trace tr1).
    t.add(kValid, MsgType::kReadReq,
          {kValid,
           {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});

    // Read request on an INVALID copy: ask the sequencer and block further
    // local requests (trace tr2, first half).
    t.add(kInvalid, MsgType::kReadReq,
          {kInvalid,
           {Action::simple(K::kPopRead), Action::simple(K::kDisable),
            Action::push(D::kHome, MsgType::kReadPer,
                         ParamPresence::kNone)}});

    // Grant: install the user information, answer the application, resume
    // (trace tr2, second half).
    t.add(kInvalid, MsgType::kReadGnt,
          {kValid,
           {Action::simple(K::kPopUserInfo), Action::simple(K::kReturn),
            Action::simple(K::kEnable)}});

    // Write request (traces tr3/tr4): forward the write parameters to the
    // sequencer; the local copy is not updated and becomes INVALID.
    for (int s : {kInvalid, kValid}) {
      t.add(s, MsgType::kWriteReq,
            {kInvalid,
             {Action::simple(K::kPopWrite),
              Action::push(D::kHome, MsgType::kWritePer,
                           ParamPresence::kWriteParams),
              Action::simple(K::kCompleteWrite)}});
    }

    // Invalidation from the sequencer.
    t.add(kValid, MsgType::kInval, {kInvalid, {}});
    t.add(kInvalid, MsgType::kInval, {kInvalid, {}});
    return t;
  }();
  return table;
}

const TransitionTable& write_through_sequencer_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"VALID"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;
    const int kValid = 0;

    // Own application's read: local (trace tr5).
    t.add(kValid, MsgType::kReadReq,
          {kValid,
           {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});

    // Own application's write: update the master copy, invalidate every
    // client (trace tr6, cost N).
    t.add(kValid, MsgType::kWriteReq,
          {kValid,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptHome, MsgType::kInval,
                         ParamPresence::kNone),
            Action::simple(K::kCompleteWrite)}});

    // Client read permission: grant with the user information (cost S+1).
    t.add(kValid, MsgType::kReadPer,
          {kValid,
           {Action::push(D::kInitiator, MsgType::kReadGnt,
                         ParamPresence::kUserInfo)}});

    // Client write: apply the parameters, invalidate the other N-1 clients.
    t.add(kValid, MsgType::kWritePer,
          {kValid,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptInitiatorAndHome, MsgType::kInval,
                         ParamPresence::kNone)}});
    return t;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Write-Through-V: two-phase write (slot grant, then parameter transfer);
// the writer's copy stays VALID.  Client states: 0 = INVALID, 1 = VALID.
// ---------------------------------------------------------------------------

const TransitionTable& write_through_v_client_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"INVALID", "VALID"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;
    const int kInvalid = 0, kValid = 1;

    t.add(kValid, MsgType::kReadReq,
          {kValid,
           {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(kInvalid, MsgType::kReadReq,
          {kInvalid,
           {Action::simple(K::kPopRead), Action::simple(K::kDisable),
            Action::push(D::kHome, MsgType::kReadPer,
                         ParamPresence::kNone)}});
    t.add(kInvalid, MsgType::kReadGnt,
          {kValid,
           {Action::simple(K::kPopUserInfo), Action::simple(K::kReturn),
            Action::simple(K::kEnable)}});

    // Phase 1: ask for a write slot (both states).
    for (int s : {kInvalid, kValid}) {
      t.add(s, MsgType::kWriteReq,
            {s,
             {Action::simple(K::kPopWrite), Action::simple(K::kDisable),
              Action::push(D::kHome, MsgType::kWritePer,
                           ParamPresence::kNone)}});
      // Phase 2: the grant carries the reserved sequence number; apply
      // locally and transfer the parameters.
      t.add(s, MsgType::kWriteGnt,
            {kValid,
             {Action::simple(K::kApplyPendingWithMsgVersion),
              Action::push(D::kHome, MsgType::kWriteData,
                           ParamPresence::kWriteParams),
              Action::simple(K::kCompleteWrite),
              Action::simple(K::kEnable)}});
      t.add(s, MsgType::kInval, {kInvalid, {}});
      t.add(s, MsgType::kEject,
            {kInvalid, {Action::simple(K::kCompleteOp)}});
      t.add(s, MsgType::kSyncReq,
            {s,
             {Action::simple(K::kDisable),
              Action::push(D::kHome, MsgType::kSyncReq,
                           ParamPresence::kNone)}});
      t.add(s, MsgType::kSyncAck,
            {s,
             {Action::simple(K::kCompleteOp), Action::simple(K::kEnable)}});
    }
    return t;
  }();
  return table;
}

const TransitionTable& write_through_v_sequencer_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"VALID"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;
    const int kValid = 0;

    t.add(kValid, MsgType::kReadReq,
          {kValid,
           {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(kValid, MsgType::kWriteReq,
          {kValid,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptHome, MsgType::kInval,
                         ParamPresence::kNone),
            Action::simple(K::kCompleteWrite)}});
    t.add(kValid, MsgType::kReadPer,
          {kValid,
           {Action::push(D::kInitiator, MsgType::kReadGnt,
                         ParamPresence::kUserInfo)}});
    // Reserve the next sequence slot and grant it.
    t.add(kValid, MsgType::kWritePer,
          {kValid,
           {Action::push(D::kInitiator, MsgType::kWriteGnt,
                         ParamPresence::kNone,
                         /*reserve_version=*/true)}});
    // The parameter transfer: apply with the reserved number, invalidate
    // the other N-1 clients.
    t.add(kValid, MsgType::kWriteData,
          {kValid,
           {Action::simple(K::kChangeFromMessage),
            Action::push(D::kExceptInitiatorAndHome, MsgType::kInval,
                         ParamPresence::kNone)}});
    t.add(kValid, MsgType::kSyncReq,
          {kValid,
           {Action::push(D::kInitiator, MsgType::kSyncAck,
                         ParamPresence::kNone)}});
    return t;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Dragon: write-update, fire-and-forget.  Single states.
// ---------------------------------------------------------------------------

const TransitionTable& dragon_client_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"SHARED-CLEAN"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;

    t.add(0, MsgType::kReadReq,
          {0, {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(0, MsgType::kWriteReq,
          {0,
           {Action::simple(K::kPopWrite),
            Action::simple(K::kApplyPendingLocal),
            Action::push(D::kHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams),
            Action::simple(K::kCompleteWrite)}});
    t.add(0, MsgType::kUpdate,
          {0, {Action::simple(K::kChangeFromMessage)}});
    return t;
  }();
  return table;
}

const TransitionTable& dragon_sequencer_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"SHARED-DIRTY"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;

    t.add(0, MsgType::kReadReq,
          {0, {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(0, MsgType::kWriteReq,
          {0,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams),
            Action::simple(K::kCompleteWrite)}});
    // A client's write: sequence it and rebroadcast to everyone else.
    t.add(0, MsgType::kUpdate,
          {0,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptInitiatorAndHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams)}});
    return t;
  }();
  return table;
}

// ---------------------------------------------------------------------------
// Firefly: write-update with a blocking completion token.
// ---------------------------------------------------------------------------

const TransitionTable& firefly_client_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"SHARED"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;

    t.add(0, MsgType::kReadReq,
          {0, {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(0, MsgType::kWriteReq,
          {0,
           {Action::simple(K::kPopWrite), Action::simple(K::kDisable),
            Action::push(D::kHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams)}});
    t.add(0, MsgType::kAck,
          {0,
           {Action::simple(K::kApplyPendingWithMsgVersion),
            Action::simple(K::kCompleteWrite),
            Action::simple(K::kEnable)}});
    t.add(0, MsgType::kUpdate,
          {0, {Action::simple(K::kChangeFromMessage)}});
    return t;
  }();
  return table;
}

const TransitionTable& firefly_sequencer_table() {
  static const TransitionTable table = [] {
    TransitionTable t({"VALID"}, /*start_state=*/0);
    using K = Action::Kind;
    using D = Action::Dest;

    t.add(0, MsgType::kReadReq,
          {0, {Action::simple(K::kPopRead), Action::simple(K::kReturn)}});
    t.add(0, MsgType::kWriteReq,
          {0,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams),
            Action::simple(K::kCompleteWrite)}});
    t.add(0, MsgType::kUpdate,
          {0,
           {Action::simple(K::kPopWrite), Action::simple(K::kChange),
            Action::push(D::kExceptInitiatorAndHome, MsgType::kUpdate,
                         ParamPresence::kWriteParams),
            Action::push(D::kInitiator, MsgType::kAck,
                         ParamPresence::kNone, /*reserve_version=*/false,
                         /*carry_version=*/true)}});
    return t;
  }();
  return table;
}

}  // namespace drsm::fsm
