#include "check/state_store.h"

#include <algorithm>
#include <utility>

#include "support/hash.h"

namespace drsm::check {

namespace {

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

StateStore::StateStore(std::size_t expected_max) { allocate(expected_max); }

void StateStore::allocate(std::size_t expected_max) {
  // ~2x headroom over the expected maximum keeps open-addressing probe
  // chains short; the minimum keeps tiny configurations cheap but real.
  const std::size_t total =
      next_pow2(std::max<std::size_t>(1024, expected_max * 2));
  capacity_ = expected_max;
  slots_per_shard_ = total / kShards;
  slot_mask_ = slots_per_shard_ - 1;
  // A shard refusing inserts beyond 7/8 fill bounds the worst-case probe
  // chain; the checker treats the refusal as its state cap.
  max_probe_ = slots_per_shard_ - slots_per_shard_ / 8;
  shards_.clear();
  shards_.resize(kShards);
  for (Shard& shard : shards_) {
    shard.slots =
        std::make_unique<std::atomic<std::uint64_t>[]>(slots_per_shard_);
    for (std::size_t i = 0; i < slots_per_shard_; ++i)
      shard.slots[i].store(0, std::memory_order_relaxed);
  }
}

void StateStore::reserve(std::size_t expected_max) {
  if (expected_max <= capacity_) return;
  std::vector<Shard> old = std::move(shards_);
  const std::size_t old_slots = slots_per_shard_;
  allocate(expected_max);
  // Exclusive access by contract, so plain relaxed rehash: every claimed
  // key lands exactly once in the fresh (strictly larger) arrays.
  for (const Shard& shard : old)
    for (std::size_t i = 0; i < old_slots; ++i) {
      const std::uint64_t key = shard.slots[i].load(std::memory_order_relaxed);
      if (key != 0) insert_unlocked(key);
    }
}

void StateStore::insert_unlocked(std::uint64_t key) {
  const std::uint64_t mixed = hash_mix(key);
  Shard& shard = shards_[(mixed >> 60) & (kShards - 1)];
  std::size_t at = static_cast<std::size_t>(mixed) & slot_mask_;
  while (shard.slots[at].load(std::memory_order_relaxed) != 0)
    at = (at + 1) & slot_mask_;
  shard.slots[at].store(key, std::memory_order_relaxed);
}

StateStore::Claim StateStore::claim(std::uint64_t key) {
  if (key == 0) key = 1;  // 0 marks an empty slot
  // Re-mix before indexing: canonical keys are minima over permutation
  // orbits, which skews their high bits toward zero — raw top-bit
  // sharding would pile most keys into shard 0.  The bijective finalizer
  // restores a uniform spread without changing key identity.
  const std::uint64_t mixed = hash_mix(key);
  Shard& shard = shards_[(mixed >> 60) & (kShards - 1)];
  std::size_t at = static_cast<std::size_t>(mixed) & slot_mask_;
  for (std::size_t probe = 0; probe < max_probe_; ++probe) {
    std::uint64_t seen = shard.slots[at].load(std::memory_order_acquire);
    if (seen == key) return Claim::kPresent;
    if (seen == 0) {
      std::uint64_t expected = 0;
      if (shard.slots[at].compare_exchange_strong(
              expected, key, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return Claim::kInserted;
      }
      if (expected == key) return Claim::kPresent;
      // Lost the race to a different key: fall through and keep probing.
    }
    at = (at + 1) & slot_mask_;
  }
  return Claim::kOverflow;
}

}  // namespace drsm::check
