#include "check/world.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "protocols/detail.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/text.h"

namespace drsm::check {
namespace {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

namespace pdetail = protocols::detail;

/// MachineContext over a World: sends queue into the channels, completions
/// update the pending bookkeeping, and every oracle-relevant callback is
/// checked on the spot.
class Ctx final : public fsm::MachineContext {
 public:
  Ctx(World& w, NodeId self, std::size_t capacity, StepOutcome& out)
      : w_(w), self_(self), capacity_(capacity), out_(out) {}

  NodeId self() const override { return self_; }
  std::size_t num_clients() const override { return w_.num_nodes() - 1; }
  const fsm::CostModel& costs() const override {
    static const fsm::CostModel kCosts;
    return kCosts;
  }

  void send(NodeId dest, Message msg) override {
    if (dest >= w_.num_nodes()) {
      out_.violate("defined-transition",
                   strfmt("node %u sent to out-of-range node %u", self_,
                          dest));
      return;
    }
    msg.sender = self_;
    auto& channel = w_.channels[self_ * w_.num_nodes() + dest];
    if (channel.size() >= capacity_) {
      out_.truncated = true;
      return;
    }
    channel.push_back(msg);
  }

  void send_except(std::initializer_list<NodeId> excluded,
                   Message msg) override {
    for (NodeId node = 0; node < w_.num_nodes(); ++node) {
      bool skip = false;
      for (NodeId ex : excluded) skip = skip || ex == node;
      if (!skip) send(node, msg);
    }
  }

  void return_read(std::uint64_t value, std::uint64_t version) override {
    out_.read_returned = true;
    out_.read_value = value;
    out_.read_version = version;
    if (self_ < num_clients()) {
      if (w_.pending[self_] ==
          static_cast<std::uint8_t>(OpKind::kRead) + 1) {
        w_.pending[self_] = 0;
      } else {
        out_.violate("defined-transition",
                     strfmt("node %u returned read data with no read "
                            "pending",
                            self_));
      }
    }
    check_read(value, version);
  }

  void complete_write(std::uint64_t version) override {
    (void)version;
    complete(OpKind::kWrite);
  }

  void complete_op() override {
    if (self_ < num_clients() && w_.pending[self_] != 0)
      w_.pending[self_] = 0;
  }

  void disable_local_queue() override { w_.disabled[self_] = 1; }
  void enable_local_queue() override { w_.disabled[self_] = 0; }

  std::uint64_t next_version() override { return ++w_.version_counter; }

  void commit_write(std::uint64_t version, std::uint64_t value) override {
    if (version == 0 || version > w_.version_counter) {
      out_.violate("serialization",
                   strfmt("node %u committed version %llu outside the "
                          "drawn sequence (counter %llu)",
                          self_, static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(
                              w_.version_counter)));
      return;
    }
    if (w_.issued.find(value) == w_.issued.end()) {
      out_.violate("serialization",
                   strfmt("version %llu committed value %llu that no "
                          "client issued",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(value)));
      return;
    }
    const auto [it, inserted] = w_.commit_log.emplace(version, value);
    if (!inserted && it->second != value) {
      out_.violate("serialization",
                   strfmt("version %llu rebound: value %llu then %llu",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(it->second),
                          static_cast<unsigned long long>(value)));
      return;
    }
    if (version > w_.latest_version) {
      w_.latest_version = version;
      w_.latest_value = value;
    }
  }

 private:
  void complete(OpKind op) {
    if (self_ >= num_clients()) return;
    if (w_.pending[self_] == static_cast<std::uint8_t>(op) + 1)
      w_.pending[self_] = 0;
    else
      out_.violate("defined-transition",
                   strfmt("node %u completed a %s with no such operation "
                          "pending",
                          self_, fsm::to_string(op)));
  }

  /// The kConcurrent oracle rules (see check/oracle.h): a read may be
  /// stale mid-flight, but must return a serialized (version, value) pair
  /// — or the node's own issued write — and per-node versions never go
  /// backwards.
  void check_read(std::uint64_t value, std::uint64_t version) {
    const auto own = w_.issued.find(value);
    const bool own_write = own != w_.issued.end() && own->second == self_;
    if (version == 0) {
      if (value != 0 && !own_write)
        out_.violate("read-oracle",
                     strfmt("node %u read unserialized value %llu", self_,
                            static_cast<unsigned long long>(value)));
    } else {
      const auto it = w_.commit_log.find(version);
      if (it == w_.commit_log.end()) {
        if (!own_write)
          out_.violate("read-oracle",
                       strfmt("node %u read never-serialized version %llu",
                              self_,
                              static_cast<unsigned long long>(version)));
      } else if (it->second != value && !own_write) {
        out_.violate("read-oracle",
                     strfmt("node %u read (value %llu, version %llu) but "
                            "that version serialized value %llu",
                            self_, static_cast<unsigned long long>(value),
                            static_cast<unsigned long long>(version),
                            static_cast<unsigned long long>(it->second)));
      }
    }
    std::uint64_t& last = w_.last_read_version[self_];
    if (version < last && !own_write)
      out_.violate("read-oracle",
                   strfmt("node %u read version %llu after version %llu",
                          self_, static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(last)));
    if (version > last) last = version;
  }

  World& w_;
  NodeId self_;
  std::size_t capacity_;
  StepOutcome& out_;
};

Message make_request(NodeId client, OpKind op, std::uint64_t value) {
  Message request;
  switch (op) {
    case OpKind::kRead: request.token.type = MsgType::kReadReq; break;
    case OpKind::kWrite: request.token.type = MsgType::kWriteReq; break;
    case OpKind::kEject: request.token.type = MsgType::kEject; break;
    case OpKind::kSync: request.token.type = MsgType::kSyncReq; break;
  }
  request.token.initiator = client;
  request.token.object = 0;
  request.token.queue = QueueKind::kLocal;
  request.token.params = op == OpKind::kWrite ? ParamPresence::kWriteParams
                                              : ParamPresence::kReadParams;
  request.value = value;
  request.sender = client;
  return request;
}

void run_machine(World& w, NodeId node, const Message& msg,
                 std::size_t capacity, StepOutcome& out) {
  Ctx ctx(w, node, capacity, out);
  try {
    w.machines[node]->on_message(ctx, msg);
  } catch (const drsm::Error& error) {
    // A DRSM_CHECK firing inside a machine is the protocol saying "no
    // transition defined for this (state, token) pair".
    out.violate("defined-transition", error.what());
  }
}

/// MachineContext for the POR purity dry run: any callback at all marks
/// the delivery impure.  next_version reports what the real run would
/// draw but still disqualifies (it advances global state).
class PurityCtx final : public fsm::MachineContext {
 public:
  PurityCtx(NodeId self, std::size_t num_clients,
            std::uint64_t version_counter)
      : self_(self), num_clients_(num_clients), counter_(version_counter) {}

  bool impure() const { return impure_; }

  NodeId self() const override { return self_; }
  std::size_t num_clients() const override { return num_clients_; }
  const fsm::CostModel& costs() const override {
    static const fsm::CostModel kCosts;
    return kCosts;
  }
  void send(NodeId, Message) override { impure_ = true; }
  void send_except(std::initializer_list<NodeId>, Message) override {
    impure_ = true;
  }
  void return_read(std::uint64_t, std::uint64_t) override { impure_ = true; }
  void complete_write(std::uint64_t) override { impure_ = true; }
  void complete_op() override { impure_ = true; }
  void disable_local_queue() override { impure_ = true; }
  void enable_local_queue() override { impure_ = true; }
  std::uint64_t next_version() override {
    impure_ = true;
    return counter_ + 1;
  }
  void commit_write(std::uint64_t, std::uint64_t) override {
    impure_ = true;
  }

 private:
  NodeId self_;
  std::size_t num_clients_;
  std::uint64_t counter_;
  bool impure_ = false;
};

}  // namespace

World World::clone() const {
  World w;
  w.machines.reserve(machines.size());
  for (const auto& m : machines) w.machines.push_back(m->clone());
  w.channels = channels;
  w.reads_left = reads_left;
  w.writes_left = writes_left;
  w.pending = pending;
  w.disabled = disabled;
  w.version_counter = version_counter;
  w.issue_counter = issue_counter;
  w.commit_log = commit_log;
  w.issued = issued;
  w.latest_version = latest_version;
  w.latest_value = latest_value;
  w.last_read_version = last_read_version;
  return w;
}

World make_initial_world(const CheckConfig& cfg) {
  const std::size_t nodes = cfg.num_clients + 1;
  World init;
  init.machines.reserve(nodes);
  for (NodeId node = 0; node < nodes; ++node)
    init.machines.push_back(
        cfg.machine_factory
            ? cfg.machine_factory(node)
            : protocols::make_machine(cfg.protocol, node, cfg.num_clients));
  init.channels.resize(nodes * nodes);
  init.reads_left.assign(cfg.num_clients,
                         static_cast<std::uint8_t>(cfg.reads_per_client));
  init.writes_left.assign(cfg.num_clients,
                          static_cast<std::uint8_t>(cfg.writes_per_client));
  init.pending.assign(cfg.num_clients, 0);
  init.disabled.assign(nodes, 0);
  init.last_read_version.assign(nodes, 0);
  return init;
}

void apply_issue(World& w, NodeId client, OpKind op, std::size_t capacity,
                 StepOutcome& out, Message& request_out) {
  std::uint64_t value = 0;
  if (op == OpKind::kWrite) {
    value = ++w.issue_counter;
    w.issued.emplace(value, client);
    --w.writes_left[client];
  } else {
    --w.reads_left[client];
  }
  w.pending[client] = static_cast<std::uint8_t>(op) + 1;
  request_out = make_request(client, op, value);
  run_machine(w, client, request_out, capacity, out);
}

void apply_deliver(World& w, NodeId src, NodeId dst, std::size_t capacity,
                   StepOutcome& out, Message& msg_out) {
  auto& channel = w.channels[src * w.num_nodes() + dst];
  msg_out = channel.front();
  channel.pop_front();
  run_machine(w, dst, msg_out, capacity, out);
}

std::vector<std::vector<NodeId>> client_permutations(
    std::size_t num_clients) {
  std::vector<NodeId> perm(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c)
    perm[c] = static_cast<NodeId>(c);
  std::vector<std::vector<NodeId>> all;
  do {
    all.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return all;  // next_permutation from sorted start yields identity first
}

void encode_key(const World& w, std::vector<std::uint8_t>& key) {
  key.clear();
  for (const auto& machine : w.machines) machine->encode_full(key);
  for (const auto& channel : w.channels) {
    key.push_back(static_cast<std::uint8_t>(channel.size()));
    for (const Message& msg : channel) {
      key.push_back(static_cast<std::uint8_t>(msg.token.type));
      key.push_back(static_cast<std::uint8_t>(msg.token.initiator));
      key.push_back(static_cast<std::uint8_t>(msg.token.object));
      key.push_back(static_cast<std::uint8_t>(msg.token.params));
    }
  }
  const std::size_t clients = w.num_nodes() - 1;
  for (std::size_t c = 0; c < clients; ++c) {
    key.push_back(w.pending[c]);
    key.push_back(w.reads_left[c]);
    key.push_back(w.writes_left[c]);
  }
  for (std::size_t n = 0; n < w.num_nodes(); ++n)
    key.push_back(w.disabled[n]);
}

bool encode_key_relabeled(const World& w, const NodeId* map,
                          std::vector<std::uint8_t>& key) {
  const std::size_t nodes = w.num_nodes();
  const std::size_t clients = nodes - 1;
  // Extend to a full-node map (home is a fixed point) and invert it, so
  // every section below can be emitted in *new*-id order.
  NodeId full[256];
  NodeId inv[256];
  for (std::size_t n = 0; n < nodes; ++n)
    full[n] = pdetail::map_node(static_cast<NodeId>(n), map, clients);
  for (std::size_t n = 0; n < nodes; ++n) inv[full[n]] = static_cast<NodeId>(n);

  key.clear();
  for (std::size_t j = 0; j < nodes; ++j)
    if (!w.machines[inv[j]]->encode_relabeled(key, map, clients))
      return false;
  for (std::size_t new_src = 0; new_src < nodes; ++new_src) {
    for (std::size_t new_dst = 0; new_dst < nodes; ++new_dst) {
      const auto& channel = w.channels[inv[new_src] * nodes + inv[new_dst]];
      key.push_back(static_cast<std::uint8_t>(channel.size()));
      for (const Message& msg : channel) {
        // sender is implied by the channel (Ctx::send stamps sender =
        // source node), and values/versions/hops never select a
        // transition — same exclusions as encode_key.
        key.push_back(static_cast<std::uint8_t>(msg.token.type));
        key.push_back(static_cast<std::uint8_t>(
            pdetail::map_node(msg.token.initiator, map, clients)));
        key.push_back(static_cast<std::uint8_t>(msg.token.object));
        key.push_back(static_cast<std::uint8_t>(msg.token.params));
      }
    }
  }
  for (std::size_t c = 0; c < clients; ++c) {
    const NodeId old = inv[c];
    key.push_back(w.pending[old]);
    key.push_back(w.reads_left[old]);
    key.push_back(w.writes_left[old]);
  }
  for (std::size_t n = 0; n < nodes; ++n) key.push_back(w.disabled[inv[n]]);
  return true;
}

bool supports_relabeling(const World& w) {
  std::vector<NodeId> identity(w.num_clients());
  for (std::size_t c = 0; c < identity.size(); ++c)
    identity[c] = static_cast<NodeId>(c);
  std::vector<std::uint8_t> scratch;
  for (const auto& machine : w.machines)
    if (!machine->encode_relabeled(scratch, identity.data(), identity.size()))
      return false;
  return true;
}

CanonicalHash canonical_hash(const World& w,
                             const std::vector<std::vector<NodeId>>& perms,
                             std::vector<std::uint8_t>& scratch) {
  CanonicalHash result;
  std::uint64_t identity_hash = 0;
  for (std::size_t i = 0; i < perms.size(); ++i) {
    const bool ok = encode_key_relabeled(w, perms[i].data(), scratch);
    DRSM_CHECK(ok, "canonical_hash on a machine without relabeling support");
    const std::uint64_t h = hash_bytes(scratch.data(), scratch.size());
    if (i == 0) {
      identity_hash = h;
      result.hash = h;
    } else if (h < result.hash) {
      result.hash = h;
    }
  }
  result.nontrivial = result.hash != identity_hash;
  return result;
}

void serialize_world(const World& w, std::vector<std::uint8_t>& out) {
  out.clear();
  const std::size_t nodes = w.num_nodes();
  const std::size_t clients = nodes - 1;
  for (const auto& machine : w.machines) machine->encode_state(out);
  for (const auto& channel : w.channels) {
    out.push_back(static_cast<std::uint8_t>(channel.size()));
    for (const Message& msg : channel) pdetail::encode_message(out, msg);
  }
  for (std::size_t c = 0; c < clients; ++c) {
    out.push_back(w.pending[c]);
    out.push_back(w.reads_left[c]);
    out.push_back(w.writes_left[c]);
  }
  for (std::size_t n = 0; n < nodes; ++n) out.push_back(w.disabled[n]);
  for (std::size_t n = 0; n < nodes; ++n)
    pdetail::put_u64(out, w.last_read_version[n]);
  pdetail::put_u64(out, w.version_counter);
  pdetail::put_u64(out, w.issue_counter);
  pdetail::put_u64(out, w.latest_version);
  pdetail::put_u64(out, w.latest_value);
  // Hash maps serialize in sorted order so equal Worlds give equal bytes.
  pdetail::put_u32(out, static_cast<std::uint32_t>(w.commit_log.size()));
  {
    std::map<std::uint64_t, std::uint64_t> sorted(w.commit_log.begin(),
                                                  w.commit_log.end());
    for (const auto& [ver, val] : sorted) {
      pdetail::put_u64(out, ver);
      pdetail::put_u64(out, val);
    }
  }
  pdetail::put_u32(out, static_cast<std::uint32_t>(w.issued.size()));
  {
    std::map<std::uint64_t, NodeId> sorted(w.issued.begin(), w.issued.end());
    for (const auto& [val, writer] : sorted) {
      pdetail::put_u64(out, val);
      pdetail::put_u32(out, writer);
    }
  }
}

bool deserialize_world(const CheckConfig& cfg, const std::uint8_t* p,
                       const std::uint8_t* end, World& out) {
  out = make_initial_world(cfg);
  const std::size_t nodes = out.num_nodes();
  const std::size_t clients = nodes - 1;
  for (auto& machine : out.machines)
    if (!machine->decode_state(p, end)) return false;
  for (auto& channel : out.channels) {
    channel.clear();
    const std::size_t count = pdetail::take_u8(p, end);
    for (std::size_t i = 0; i < count; ++i)
      channel.push_back(pdetail::decode_message(p, end));
  }
  for (std::size_t c = 0; c < clients; ++c) {
    out.pending[c] = pdetail::take_u8(p, end);
    out.reads_left[c] = pdetail::take_u8(p, end);
    out.writes_left[c] = pdetail::take_u8(p, end);
  }
  for (std::size_t n = 0; n < nodes; ++n)
    out.disabled[n] = pdetail::take_u8(p, end);
  for (std::size_t n = 0; n < nodes; ++n)
    out.last_read_version[n] = pdetail::take_u64(p, end);
  out.version_counter = pdetail::take_u64(p, end);
  out.issue_counter = pdetail::take_u64(p, end);
  out.latest_version = pdetail::take_u64(p, end);
  out.latest_value = pdetail::take_u64(p, end);
  const std::size_t commits = pdetail::take_u32(p, end);
  for (std::size_t i = 0; i < commits; ++i) {
    const std::uint64_t ver = pdetail::take_u64(p, end);
    const std::uint64_t val = pdetail::take_u64(p, end);
    out.commit_log.emplace(ver, val);
  }
  const std::size_t issues = pdetail::take_u32(p, end);
  for (std::size_t i = 0; i < issues; ++i) {
    const std::uint64_t val = pdetail::take_u64(p, end);
    const NodeId writer = pdetail::take_u32(p, end);
    out.issued.emplace(val, writer);
  }
  DRSM_CHECK(p == end, "deserialize_world: trailing bytes");
  return true;
}

bool channels_empty(const World& w) {
  for (const auto& channel : w.channels)
    if (!channel.empty()) return false;
  return true;
}

bool any_pending(const World& w) {
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c)
    if (w.pending[c] != 0) return true;
  return false;
}

bool fully_spent(const World& w) {
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c)
    if (w.reads_left[c] != 0 || w.writes_left[c] != 0) return false;
  return true;
}

const char* check_state(const World& w, const CheckConfig& cfg,
                        std::string& detail) {
  if (cfg.check_exclusivity) {
    NodeId first_owner = kNoNode;
    for (NodeId node = 0; node < w.num_nodes(); ++node) {
      const auto cls = protocols::classify_state(
          cfg.protocol, w.machines[node]->state_name());
      if (cls != protocols::CopyClass::kExclusive) continue;
      if (first_owner == kNoNode) {
        first_owner = node;
      } else {
        detail = strfmt("nodes %u (%s) and %u (%s) both hold exclusive "
                        "copies",
                        first_owner,
                        w.machines[first_owner]->state_name(), node,
                        w.machines[node]->state_name());
        return "exclusivity";
      }
    }
  }
  if (!channels_empty(w)) return nullptr;
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c) {
    if (w.pending[c] != 0) {
      detail = strfmt("client %zu has a pending %s but no message is in "
                      "flight anywhere",
                      c,
                      fsm::to_string(static_cast<fsm::OpKind>(
                          w.pending[c] - 1)));
      return "deadlock";
    }
  }
  for (std::size_t n = 0; n < w.num_nodes(); ++n) {
    if (w.disabled[n] != 0) {
      detail = strfmt("node %zu left its local queue disabled at "
                      "quiescence",
                      n);
      return "stuck-disable";
    }
  }
  if (fully_spent(w)) {
    for (std::uint64_t v = 1; v <= w.version_counter; ++v) {
      if (w.commit_log.find(v) == w.commit_log.end()) {
        detail = strfmt("terminal state: drawn version %llu was never "
                        "bound to a value",
                        static_cast<unsigned long long>(v));
        return "serialization";
      }
    }
    std::unordered_set<std::uint64_t> committed;
    for (const auto& [version, value] : w.commit_log)
      committed.insert(value);
    for (const auto& [value, writer] : w.issued) {
      if (committed.find(value) == committed.end()) {
        detail = strfmt("terminal state: client %u's write (value %llu) "
                        "was never serialized",
                        writer, static_cast<unsigned long long>(value));
        return "serialization";
      }
    }
  }
  return nullptr;
}

const char* probe_read(const World& quiescent, NodeId client,
                       const CheckConfig& cfg, std::string& detail) {
  const std::size_t capacity = cfg.channel_capacity;
  World w = quiescent.clone();
  StepOutcome out;
  Message request;
  ++w.reads_left[client];  // apply_issue debits one read
  apply_issue(w, client, OpKind::kRead, capacity, out, request);
  std::size_t steps = 0;
  while (out.invariant == nullptr) {
    bool delivered = false;
    for (std::size_t src = 0; src < w.num_nodes() && !delivered; ++src) {
      for (std::size_t dst = 0; dst < w.num_nodes() && !delivered; ++dst) {
        if (w.channels[src * w.num_nodes() + dst].empty()) continue;
        Message msg;
        apply_deliver(w, static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      capacity, out, msg);
        delivered = true;
      }
    }
    if (!delivered) break;
    if (++steps > 10000) {
      detail = strfmt("read probe at client %u did not converge within "
                      "10000 deliveries",
                      client);
      return "read-probe";
    }
  }
  if (out.invariant != nullptr) {
    detail = strfmt("read probe at client %u: %s", client,
                    out.detail.c_str());
    return out.invariant;
  }
  if (!out.read_returned) {
    detail = strfmt("read probe at client %u never returned data", client);
    return "read-probe";
  }
  if (protocols::convergence_level(cfg.protocol) ==
      protocols::ConvergenceLevel::kWriterMayLag) {
    for (const auto& [value, writer] : quiescent.issued)
      if (writer == client) return nullptr;  // lagging writer: consistency
                                             // was checked per delivery
  }
  const auto own = quiescent.issued.find(out.read_value);
  const bool own_write =
      own != quiescent.issued.end() && own->second == client;
  if (out.read_value != quiescent.latest_value) {
    detail = strfmt("read probe at client %u returned value %llu, latest "
                    "serialized write is %llu (version %llu)",
                    client,
                    static_cast<unsigned long long>(out.read_value),
                    static_cast<unsigned long long>(quiescent.latest_value),
                    static_cast<unsigned long long>(
                        quiescent.latest_version));
    return "read-probe";
  }
  if (out.read_version != quiescent.latest_version && !own_write) {
    detail = strfmt("read probe at client %u returned version %llu, "
                    "latest is %llu",
                    client,
                    static_cast<unsigned long long>(out.read_version),
                    static_cast<unsigned long long>(
                        quiescent.latest_version));
    return "read-probe";
  }
  return nullptr;
}

bool pure_absorption(const World& w, NodeId src, NodeId dst) {
  const auto& channel = w.channels[src * w.num_nodes() + dst];
  DRSM_CHECK(!channel.empty(), "pure_absorption on an empty channel");
  const Message& msg = channel.front();
  // Only no-op-prone message kinds are worth the dry run: a redundant
  // invalidation (copy already invalid, or the owner invalidating itself)
  // or a stale/duplicate update.  Everything else always reacts.
  if (msg.token.type != MsgType::kInval &&
      msg.token.type != MsgType::kUpdate)
    return false;
  std::vector<std::uint8_t> before;
  w.machines[dst]->encode_state(before);
  auto probe = w.machines[dst]->clone();
  PurityCtx ctx(dst, w.num_clients(), w.version_counter);
  try {
    probe->on_message(ctx, msg);
  } catch (const drsm::Error&) {
    return false;  // defined-transition violation: the real run must see it
  }
  if (ctx.impure()) return false;
  std::vector<std::uint8_t> after;
  probe->encode_state(after);
  return before == after;
}

}  // namespace drsm::check
