// Explicit-state model checker for the eight replication protocols.
//
// The checked model is the paper's system at full asynchrony: one protocol
// machine per node (N clients plus the sequencer), connected by bounded
// FIFO channels, one channel per directed node pair.  Clients issue a
// bounded budget of application operations (closed loop: one outstanding
// operation per client); between steps the only nondeterminism is *which*
// enabled action fires next — a client issuing an operation, or the head
// of one channel being delivered.  BFS over that nondeterminism enumerates
// every reachable global state for small configurations, deduplicating on
// the machines' total-state encodings (fsm::ProtocolMachine::encode_full)
// plus channel contents and per-client issue bookkeeping.
//
// Checked on every reachable state:
//  * defined-transition — no machine ever rejects a delivered message
//    (a DRSM_CHECK firing inside on_message is the protocol's "no
//    transition for this (state, token) pair");
//  * exclusivity — at most one copy per object is in a state that permits
//    local writes (protocols::classify_state == kExclusive);
//  * deadlock — a client with a pending operation and *no* message in any
//    channel can never complete (the protocols have no timers);
//  * stuck-disable — at quiescence (no pending operation, empty channels)
//    every local queue must be enabled again: each disable_local_queue is
//    matched by an enable before the operation completes;
//  * serialization — versions are drawn only at the serialization point,
//    each version binds to exactly one value, reads return serialized
//    values (the CoherenceOracle rules, kConcurrent mode);
//  * read-probe — at every quiescent state, a fresh read issued at each
//    client (on a clone of the state) must complete and return the latest
//    serialized write: a missed invalidation or lost update surfaces here.
//
// Because the search is breadth-first, the first violation found has a
// minimal-length trace from the initial state; export_counterexample
// renders it through the obs trace recorder as one kCheckStep event per
// step plus a final kViolation event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fsm/mealy.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "protocols/protocol.h"

namespace drsm::check {

struct CheckConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kWriteThrough;

  /// Machines come from protocols::make_machine(protocol, ...) unless this
  /// factory is set (used to put hand-built machines — e.g. deliberately
  /// broken ones, or the formal transition tables of fsm/table.h — through
  /// the same exploration).
  using MachineFactory =
      std::function<std::unique_ptr<fsm::ProtocolMachine>(NodeId)>;
  MachineFactory machine_factory;

  /// N: clients 0..N-1 issue operations; node N is the sequencer.
  std::size_t num_clients = 2;

  /// Per-client operation budgets.  The issue choices (which client, read
  /// or write) are part of the explored nondeterminism.
  std::size_t reads_per_client = 1;
  std::size_t writes_per_client = 1;

  /// Bound on in-flight messages per directed channel.  A successor that
  /// would exceed it is cut (counted in CheckResult::truncated), keeping
  /// the state space finite even for hypothetical flooding machines; the
  /// real protocols stay far below any reasonable bound.
  std::size_t channel_capacity = 8;

  /// Exploration cap; hitting it marks the result truncated.
  std::size_t max_states = 1'000'000;

  /// Classify state names via protocols::classify_state (disable for
  /// machine_factory machines with non-protocol state names).
  bool check_exclusivity = true;

  /// Run the quiescent read-agreement probe (requires machines that
  /// complete reads; disable for hand-built fragments).
  bool probe_quiescent_reads = true;
};

/// One edge of the explored transition system.
struct CheckStep {
  enum class Kind : std::uint8_t {
    kIssue,    // client `node` issues `op` (value for writes)
    kDeliver,  // head of channel src->node delivered
  };
  Kind kind = Kind::kIssue;
  NodeId node = 0;          // acting node (issuer / receiver)
  NodeId src = kNoNode;     // deliver: channel source
  fsm::OpKind op = fsm::OpKind::kRead;  // issue
  fsm::Message msg;         // deliver: the message; issue: the request
};

struct Violation {
  const char* invariant = "";  // static name: "deadlock", "exclusivity", ...
  std::string detail;          // human-readable specifics
};

struct CheckResult {
  std::size_t states = 0;       // distinct reachable states visited
  std::size_t transitions = 0;  // explored edges (including into dedups)
  std::size_t probes = 0;       // quiescent read probes run
  std::size_t truncated = 0;    // successors cut by channel_capacity
  bool hit_state_cap = false;   // max_states reached: result is partial
  std::size_t max_depth = 0;    // BFS depth of the deepest visited state

  /// Every ProtocolMachine::state_name() observed, sorted and unique —
  /// the coverage tests assert this equals protocols::copy_state_names.
  std::vector<std::string> visited_state_names;

  /// Empty on success.  Exploration stops at the first violation, so at
  /// most one entry today; kept a vector for future collect-all modes.
  std::vector<Violation> violations;

  /// Minimal trace from the initial state to the violating one (empty when
  /// ok).  The last step is the one that produced the violation.
  std::vector<CheckStep> counterexample;

  bool ok() const { return violations.empty(); }
};

/// Exhaustively explores the protocol under `config`.
CheckResult check_protocol(const CheckConfig& config);

/// Renders result.counterexample into `out` as kCheckStep events (time =
/// step index) followed by one kViolation event.  Any sink works: a
/// TraceRecorder for write_jsonl export, a FlightRecorder for post-mortem
/// capture.  No-op when the result is ok.
void export_counterexample(const CheckResult& result, obs::EventSink& out);

/// Renders the counterexample into `recorder` (appending to whatever the
/// ring already holds) and dumps it as a JSONL post-mortem to `path`.
/// Returns the dump text (empty when the result is ok and nothing was
/// written).
std::string dump_counterexample(const CheckResult& result,
                                obs::FlightRecorder& recorder,
                                const std::string& path);

}  // namespace drsm::check
