// Explicit-state model checker for the eight replication protocols.
//
// The checked model is the paper's system at full asynchrony: one protocol
// machine per node (N clients plus the sequencer), connected by bounded
// FIFO channels, one channel per directed node pair.  Clients issue a
// bounded budget of application operations (closed loop: one outstanding
// operation per client); between steps the only nondeterminism is *which*
// enabled action fires next — a client issuing an operation, or the head
// of one channel being delivered.  BFS over that nondeterminism enumerates
// every reachable global state for small configurations, deduplicating on
// the machines' total-state encodings (fsm::ProtocolMachine::encode_full)
// plus channel contents and per-client issue bookkeeping.
//
// Checked on every reachable state:
//  * defined-transition — no machine ever rejects a delivered message
//    (a DRSM_CHECK firing inside on_message is the protocol's "no
//    transition for this (state, token) pair");
//  * exclusivity — at most one copy per object is in a state that permits
//    local writes (protocols::classify_state == kExclusive);
//  * deadlock — a client with a pending operation and *no* message in any
//    channel can never complete (the protocols have no timers);
//  * stuck-disable — at quiescence (no pending operation, empty channels)
//    every local queue must be enabled again: each disable_local_queue is
//    matched by an enable before the operation completes;
//  * serialization — versions are drawn only at the serialization point,
//    each version binds to exactly one value, reads return serialized
//    values (the CoherenceOracle rules, kConcurrent mode);
//  * read-probe — at every quiescent state, a fresh read issued at each
//    client (on a clone of the state) must complete and return the latest
//    serialized write: a missed invalidation or lost update surfaces here.
//
// Because the search is breadth-first, the first violation found has a
// minimal-length trace from the initial state; export_counterexample
// renders it through the obs trace recorder as one kCheckStep event per
// step plus a final kViolation event.
//
// Scaling (see check/world.h for the correctness arguments):
//  * symmetry reduction — states are deduplicated on a canonical key
//    invariant under client permutation, shrinking the space by up to
//    N! for the protocols whose machines support relabeled encodings;
//  * partial-order reduction — a delivery that provably changes nothing
//    (a "pure absorption": redundant invalidation, stale update) is
//    expanded alone instead of interleaved with every other action;
//  * parallel frontier — each BFS depth is expanded by an
//    exec::ThreadPool over a lock-free visited set of canonical keys
//    (check/state_store.h), with successors merged deterministically at
//    the depth barrier so counterexamples stay minimal;
//  * compact frontier — queued states are exact byte snapshots
//    (serialize_world), not live machine graphs, cutting memory per
//    state by an order of magnitude.
// CheckConfig::Expansion::kFullExpansion turns the reductions off; the
// reduction-soundness tests assert both modes reach identical verdicts.
// Reduced mode dedups on 64-bit canonical hashes (not full keys): with
// n reachable states the chance of any collision is about n^2/2^64 —
// under 10^-7 even at the 1M-state cap — and kFullExpansion remains the
// exact cross-check.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fsm/mealy.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "protocols/protocol.h"

namespace drsm::obs {
class MetricsRegistry;
}  // namespace drsm::obs

namespace drsm::check {

struct CheckConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kWriteThrough;

  /// Machines come from protocols::make_machine(protocol, ...) unless this
  /// factory is set (used to put hand-built machines — e.g. deliberately
  /// broken ones, or the formal transition tables of fsm/table.h — through
  /// the same exploration).
  using MachineFactory =
      std::function<std::unique_ptr<fsm::ProtocolMachine>(NodeId)>;
  MachineFactory machine_factory;

  /// N: clients 0..N-1 issue operations; node N is the sequencer.
  std::size_t num_clients = 2;

  /// Per-client operation budgets.  The issue choices (which client, read
  /// or write) are part of the explored nondeterminism.
  std::size_t reads_per_client = 1;
  std::size_t writes_per_client = 1;

  /// Bound on in-flight messages per directed channel.  A successor that
  /// would exceed it is cut (counted in CheckResult::truncated), keeping
  /// the state space finite even for hypothetical flooding machines; the
  /// real protocols stay far below any reasonable bound.
  std::size_t channel_capacity = 8;

  /// Exploration cap; hitting it marks the result truncated.  The
  /// default admits the largest acceptance configuration — Berkeley at
  /// N=4 is exhaustive at ~4.04M canonical states — and costs nothing
  /// up front: the visited set grows geometrically with demand
  /// (check/state_store.h), so small runs never allocate for the cap.
  std::size_t max_states = 8'000'000;

  /// Classify state names via protocols::classify_state (disable for
  /// machine_factory machines with non-protocol state names).
  bool check_exclusivity = true;

  /// Symmetry and partial-order reduction are normally disabled when a
  /// machine_factory is set, because a hand-built fragment's default
  /// encode_state/encode_relabeled would under-report its state.  Set this
  /// when every factory-built machine implements the full codec contract
  /// (encode_full, encode_relabeled, encode_state/decode_state) — e.g. the
  /// dsm migration wrappers — so the reductions apply to factory worlds
  /// too.  The reduction-soundness gate is still the kFullExpansion
  /// cross-check; asserting reduced == full for the factory world is the
  /// caller's responsibility (tests/migration_test.cc does).
  bool trust_factory_encodings = false;

  /// Run the quiescent read-agreement probe (requires machines that
  /// complete reads; disable for hand-built fragments).
  bool probe_quiescent_reads = true;

  /// kReduced applies the reductions enabled below; kFullExpansion is the
  /// reference mode — every enabled action expanded at every state, full
  /// state keys, no reductions — that the soundness tests compare
  /// against.
  enum class Expansion : std::uint8_t { kReduced, kFullExpansion };
  Expansion expansion = Expansion::kReduced;

  /// Dedup on canonical (client-permutation-invariant) keys.  Applies
  /// only when every machine supports encode_relabeled and no
  /// machine_factory is set; CheckResult::symmetry_applied reports
  /// whether it actually ran.
  bool symmetry_reduction = true;

  /// Expand provably-inert deliveries (pure absorptions) alone instead
  /// of interleaving them with every other enabled action.  Same
  /// machine_factory gate as symmetry; see CheckResult::por_applied.
  /// Note: counterexamples remain minimal within the reduced graph but
  /// can be longer than kFullExpansion's.
  bool partial_order_reduction = true;

  /// Worker threads for frontier expansion: 0 picks
  /// exec::ThreadPool::default_threads() (DRSM_THREADS or hardware
  /// concurrency).  All reported counts are schedule-independent; only
  /// cap-truncated runs may vary in which states they kept.
  std::size_t threads = 0;

  /// When set, check_protocol publishes check.* counters and gauges here
  /// (states, transitions, symmetry_hits, por_pruned, states_per_sec,
  /// wall_ms, max_depth).  Not written to concurrently: workers
  /// aggregate locally and publish once at the end.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One edge of the explored transition system.
struct CheckStep {
  enum class Kind : std::uint8_t {
    kIssue,    // client `node` issues `op` (value for writes)
    kDeliver,  // head of channel src->node delivered
  };
  Kind kind = Kind::kIssue;
  NodeId node = 0;          // acting node (issuer / receiver)
  NodeId src = kNoNode;     // deliver: channel source
  fsm::OpKind op = fsm::OpKind::kRead;  // issue
  fsm::Message msg;         // deliver: the message; issue: the request
};

struct Violation {
  const char* invariant = "";  // static name: "deadlock", "exclusivity", ...
  std::string detail;          // human-readable specifics
};

struct CheckResult {
  std::size_t states = 0;       // distinct reachable states visited
  std::size_t transitions = 0;  // explored edges (including into dedups)
  std::size_t probes = 0;       // quiescent read probes run
  std::size_t truncated = 0;    // successors cut by channel_capacity
  bool hit_state_cap = false;   // max_states reached: result is partial
  std::size_t max_depth = 0;    // BFS depth of the deepest visited state

  /// Reduction accounting.  symmetry_hits counts dedups where a
  /// non-identity permutation produced the canonical key — successors
  /// that full expansion would have explored as distinct states.
  /// por_pruned counts sibling actions skipped because a pure absorption
  /// was expanded alone.
  std::size_t symmetry_hits = 0;
  std::size_t por_pruned = 0;
  bool symmetry_applied = false;  // reduction actually ran (machines
  bool por_applied = false;       // support it, mode allows it)
  bool compact_frontier = false;  // frontier held byte snapshots
  std::size_t threads_used = 1;

  double wall_seconds = 0.0;  // exploration wall time
  double states_per_sec() const {
    return wall_seconds > 0.0 ? static_cast<double>(states) / wall_seconds
                              : 0.0;
  }

  /// Every ProtocolMachine::state_name() observed, sorted and unique —
  /// the coverage tests assert this equals protocols::copy_state_names.
  std::vector<std::string> visited_state_names;

  /// Empty on success.  Exploration stops at the first violation, so at
  /// most one entry today; kept a vector for future collect-all modes.
  std::vector<Violation> violations;

  /// Minimal trace from the initial state to the violating one (empty when
  /// ok).  The last step is the one that produced the violation.
  std::vector<CheckStep> counterexample;

  bool ok() const { return violations.empty(); }
};

/// Exhaustively explores the protocol under `config`.
CheckResult check_protocol(const CheckConfig& config);

/// Renders result.counterexample into `out` as kCheckStep events (time =
/// step index) followed by one kViolation event.  Any sink works: a
/// TraceRecorder for write_jsonl export, a FlightRecorder for post-mortem
/// capture.  No-op when the result is ok.
void export_counterexample(const CheckResult& result, obs::EventSink& out);

/// Renders the counterexample into `recorder` (appending to whatever the
/// ring already holds) and dumps it as a JSONL post-mortem to `path`.
/// Returns the dump text (empty when the result is ok and nothing was
/// written).
std::string dump_counterexample(const CheckResult& result,
                                obs::FlightRecorder& recorder,
                                const std::string& path);

}  // namespace drsm::check
