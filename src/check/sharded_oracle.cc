#include "check/sharded_oracle.h"

#include "support/error.h"
#include "support/text.h"

namespace drsm::check {

ShardedOracle::ShardedOracle(std::size_t num_shards, OracleMode mode) {
  DRSM_CHECK(num_shards >= 1, "need at least one shard");
  oracles_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i)
    oracles_.push_back(std::make_unique<CoherenceOracle>(mode));
}

sim::CoherenceTap* ShardedOracle::tap(std::size_t shard) {
  DRSM_CHECK(shard < oracles_.size(), "shard index out of range");
  return oracles_[shard].get();
}

void ShardedOracle::finish() {
  for (auto& oracle : oracles_) oracle->finish();
}

bool ShardedOracle::ok() const {
  for (const auto& oracle : oracles_)
    if (!oracle->ok()) return false;
  return true;
}

std::vector<std::string> ShardedOracle::violations() const {
  std::vector<std::string> all;
  for (std::size_t i = 0; i < oracles_.size(); ++i)
    for (const std::string& v : oracles_[i]->violations())
      all.push_back(strfmt("shard %zu: ", i) + v);
  return all;
}

std::size_t ShardedOracle::commits() const {
  std::size_t n = 0;
  for (const auto& oracle : oracles_) n += oracle->commits();
  return n;
}

std::size_t ShardedOracle::issues() const {
  std::size_t n = 0;
  for (const auto& oracle : oracles_) n += oracle->issues();
  return n;
}

std::size_t ShardedOracle::reads() const {
  std::size_t n = 0;
  for (const auto& oracle : oracles_) n += oracle->reads().size();
  return n;
}

}  // namespace drsm::check
