// Property-based differential harness: seeded random workloads through the
// real runtimes, refereed by the CoherenceOracle.
//
// Each seed deterministically derives a workload shape (read disturbance,
// write disturbance, or multiple activity centers with random parameters),
// message latencies and think times, then drives:
//  * run_simulator_property — the full discrete-event EventSimulator with
//    overlapping operations, checked under the kConcurrent oracle rules;
//  * run_sequential_property — the atomic SequentialRuntime on a global
//    operation sequence sampled from the same kind of workload, checked
//    under the strict kSequential rules (every read returns the latest
//    serialized write).
//
// Results carry the oracle's read log so the differential tests can assert
// that all eight protocols return the *same* value sequence for the same
// seed (the protocols differ in cost, never in semantics).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "protocols/protocol.h"

namespace drsm::check {

struct PropertyConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kWriteThrough;
  std::uint64_t seed = 1;
  std::size_t num_clients = 3;
  std::size_t ops = 150;  // completed operations per run
};

struct PropertyResult {
  std::vector<std::string> violations;  // oracle violations, if any
  std::vector<CoherenceOracle::ReadRecord> reads;  // tap order
  std::size_t commits = 0;
  std::size_t issues = 0;
  bool ok() const { return violations.empty(); }
};

PropertyResult run_simulator_property(const PropertyConfig& config);
PropertyResult run_sequential_property(const PropertyConfig& config);

}  // namespace drsm::check
