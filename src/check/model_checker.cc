#include "check/model_checker.h"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "support/error.h"
#include "support/text.h"

namespace drsm::check {
namespace {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

/// The complete global state of one explored interleaving.  The fields up
/// to `disabled` are behaviour-relevant and enter the dedup key; the rest
/// is the path-local write history the serialization checks run against
/// (values and versions never select a transition, by the same argument
/// that keeps them out of ProtocolMachine::encode).
struct World {
  std::vector<std::unique_ptr<fsm::ProtocolMachine>> machines;  // node 0..N
  std::vector<std::deque<Message>> channels;  // src * (N+1) + dst
  std::vector<std::uint8_t> reads_left;       // per client
  std::vector<std::uint8_t> writes_left;      // per client
  std::vector<std::uint8_t> pending;          // per client: 0 or op + 1
  std::vector<std::uint8_t> disabled;         // per node: local queue off

  std::uint64_t version_counter = 0;
  std::uint64_t issue_counter = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> commit_log;  // ver -> val
  std::unordered_map<std::uint64_t, NodeId> issued;  // value -> writer
  std::uint64_t latest_version = 0;
  std::uint64_t latest_value = 0;
  std::vector<std::uint64_t> last_read_version;  // per node

  std::size_t num_nodes() const { return machines.size(); }

  World clone() const {
    World w;
    w.machines.reserve(machines.size());
    for (const auto& m : machines) w.machines.push_back(m->clone());
    w.channels = channels;
    w.reads_left = reads_left;
    w.writes_left = writes_left;
    w.pending = pending;
    w.disabled = disabled;
    w.version_counter = version_counter;
    w.issue_counter = issue_counter;
    w.commit_log = commit_log;
    w.issued = issued;
    w.latest_version = latest_version;
    w.latest_value = latest_value;
    w.last_read_version = last_read_version;
    return w;
  }
};

/// What happened while applying one step to a World clone.
struct StepOutcome {
  const char* invariant = nullptr;  // first violated invariant, if any
  std::string detail;
  bool truncated = false;  // a send exceeded channel_capacity
  bool read_returned = false;
  std::uint64_t read_value = 0;
  std::uint64_t read_version = 0;

  void violate(const char* inv, std::string text) {
    if (invariant == nullptr) {
      invariant = inv;
      detail = std::move(text);
    }
  }
};

/// MachineContext over a World: sends queue into the channels, completions
/// update the pending bookkeeping, and every oracle-relevant callback is
/// checked on the spot.
class Ctx final : public fsm::MachineContext {
 public:
  Ctx(World& w, NodeId self, std::size_t capacity, StepOutcome& out)
      : w_(w), self_(self), capacity_(capacity), out_(out) {}

  NodeId self() const override { return self_; }
  std::size_t num_clients() const override { return w_.num_nodes() - 1; }
  const fsm::CostModel& costs() const override {
    static const fsm::CostModel kCosts;
    return kCosts;
  }

  void send(NodeId dest, Message msg) override {
    if (dest >= w_.num_nodes()) {
      out_.violate("defined-transition",
                   strfmt("node %u sent to out-of-range node %u", self_,
                          dest));
      return;
    }
    msg.sender = self_;
    auto& channel = w_.channels[self_ * w_.num_nodes() + dest];
    if (channel.size() >= capacity_) {
      out_.truncated = true;
      return;
    }
    channel.push_back(msg);
  }

  void send_except(std::initializer_list<NodeId> excluded,
                   Message msg) override {
    for (NodeId node = 0; node < w_.num_nodes(); ++node) {
      bool skip = false;
      for (NodeId ex : excluded) skip = skip || ex == node;
      if (!skip) send(node, msg);
    }
  }

  void return_read(std::uint64_t value, std::uint64_t version) override {
    out_.read_returned = true;
    out_.read_value = value;
    out_.read_version = version;
    if (self_ < num_clients()) {
      if (w_.pending[self_] ==
          static_cast<std::uint8_t>(OpKind::kRead) + 1) {
        w_.pending[self_] = 0;
      } else {
        out_.violate("defined-transition",
                     strfmt("node %u returned read data with no read "
                            "pending",
                            self_));
      }
    }
    check_read(value, version);
  }

  void complete_write(std::uint64_t version) override {
    (void)version;
    complete(OpKind::kWrite);
  }

  void complete_op() override {
    if (self_ < num_clients() && w_.pending[self_] != 0)
      w_.pending[self_] = 0;
  }

  void disable_local_queue() override { w_.disabled[self_] = 1; }
  void enable_local_queue() override { w_.disabled[self_] = 0; }

  std::uint64_t next_version() override { return ++w_.version_counter; }

  void commit_write(std::uint64_t version, std::uint64_t value) override {
    if (version == 0 || version > w_.version_counter) {
      out_.violate("serialization",
                   strfmt("node %u committed version %llu outside the "
                          "drawn sequence (counter %llu)",
                          self_, static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(
                              w_.version_counter)));
      return;
    }
    if (w_.issued.find(value) == w_.issued.end()) {
      out_.violate("serialization",
                   strfmt("version %llu committed value %llu that no "
                          "client issued",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(value)));
      return;
    }
    const auto [it, inserted] = w_.commit_log.emplace(version, value);
    if (!inserted && it->second != value) {
      out_.violate("serialization",
                   strfmt("version %llu rebound: value %llu then %llu",
                          static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(it->second),
                          static_cast<unsigned long long>(value)));
      return;
    }
    if (version > w_.latest_version) {
      w_.latest_version = version;
      w_.latest_value = value;
    }
  }

 private:
  void complete(OpKind op) {
    if (self_ >= num_clients()) return;
    if (w_.pending[self_] == static_cast<std::uint8_t>(op) + 1)
      w_.pending[self_] = 0;
    else
      out_.violate("defined-transition",
                   strfmt("node %u completed a %s with no such operation "
                          "pending",
                          self_, fsm::to_string(op)));
  }

  /// The kConcurrent oracle rules (see check/oracle.h): a read may be
  /// stale mid-flight, but must return a serialized (version, value) pair
  /// — or the node's own issued write — and per-node versions never go
  /// backwards.
  void check_read(std::uint64_t value, std::uint64_t version) {
    const auto own = w_.issued.find(value);
    const bool own_write = own != w_.issued.end() && own->second == self_;
    if (version == 0) {
      if (value != 0 && !own_write)
        out_.violate("read-oracle",
                     strfmt("node %u read unserialized value %llu", self_,
                            static_cast<unsigned long long>(value)));
    } else {
      const auto it = w_.commit_log.find(version);
      if (it == w_.commit_log.end()) {
        if (!own_write)
          out_.violate("read-oracle",
                       strfmt("node %u read never-serialized version %llu",
                              self_,
                              static_cast<unsigned long long>(version)));
      } else if (it->second != value && !own_write) {
        out_.violate("read-oracle",
                     strfmt("node %u read (value %llu, version %llu) but "
                            "that version serialized value %llu",
                            self_, static_cast<unsigned long long>(value),
                            static_cast<unsigned long long>(version),
                            static_cast<unsigned long long>(it->second)));
      }
    }
    std::uint64_t& last = w_.last_read_version[self_];
    if (version < last && !own_write)
      out_.violate("read-oracle",
                   strfmt("node %u read version %llu after version %llu",
                          self_, static_cast<unsigned long long>(version),
                          static_cast<unsigned long long>(last)));
    if (version > last) last = version;
  }

  World& w_;
  NodeId self_;
  std::size_t capacity_;
  StepOutcome& out_;
};

Message make_request(NodeId client, OpKind op, std::uint64_t value) {
  Message request;
  switch (op) {
    case OpKind::kRead: request.token.type = MsgType::kReadReq; break;
    case OpKind::kWrite: request.token.type = MsgType::kWriteReq; break;
    case OpKind::kEject: request.token.type = MsgType::kEject; break;
    case OpKind::kSync: request.token.type = MsgType::kSyncReq; break;
  }
  request.token.initiator = client;
  request.token.object = 0;
  request.token.queue = QueueKind::kLocal;
  request.token.params = op == OpKind::kWrite ? ParamPresence::kWriteParams
                                              : ParamPresence::kReadParams;
  request.value = value;
  request.sender = client;
  return request;
}

void run_machine(World& w, NodeId node, const Message& msg,
                 std::size_t capacity, StepOutcome& out) {
  Ctx ctx(w, node, capacity, out);
  try {
    w.machines[node]->on_message(ctx, msg);
  } catch (const drsm::Error& error) {
    // A DRSM_CHECK firing inside a machine is the protocol saying "no
    // transition defined for this (state, token) pair".
    out.violate("defined-transition", error.what());
  }
}

void apply_issue(World& w, NodeId client, OpKind op, std::size_t capacity,
                 StepOutcome& out, Message& request_out) {
  std::uint64_t value = 0;
  if (op == OpKind::kWrite) {
    value = ++w.issue_counter;
    w.issued.emplace(value, client);
    --w.writes_left[client];
  } else {
    --w.reads_left[client];
  }
  w.pending[client] = static_cast<std::uint8_t>(op) + 1;
  request_out = make_request(client, op, value);
  run_machine(w, client, request_out, capacity, out);
}

void apply_deliver(World& w, NodeId src, NodeId dst, std::size_t capacity,
                   StepOutcome& out, Message& msg_out) {
  auto& channel = w.channels[src * w.num_nodes() + dst];
  msg_out = channel.front();
  channel.pop_front();
  run_machine(w, dst, msg_out, capacity, out);
}

void encode_key(const World& w, std::vector<std::uint8_t>& key) {
  key.clear();
  for (const auto& machine : w.machines) machine->encode_full(key);
  for (const auto& channel : w.channels) {
    key.push_back(static_cast<std::uint8_t>(channel.size()));
    for (const Message& msg : channel) {
      key.push_back(static_cast<std::uint8_t>(msg.token.type));
      key.push_back(static_cast<std::uint8_t>(msg.token.initiator));
      key.push_back(static_cast<std::uint8_t>(msg.token.object));
      key.push_back(static_cast<std::uint8_t>(msg.token.params));
    }
  }
  const std::size_t clients = w.num_nodes() - 1;
  for (std::size_t c = 0; c < clients; ++c) {
    key.push_back(w.pending[c]);
    key.push_back(w.reads_left[c]);
    key.push_back(w.writes_left[c]);
  }
  for (std::size_t n = 0; n < w.num_nodes(); ++n)
    key.push_back(w.disabled[n]);
}

bool channels_empty(const World& w) {
  for (const auto& channel : w.channels)
    if (!channel.empty()) return false;
  return true;
}

bool any_pending(const World& w) {
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c)
    if (w.pending[c] != 0) return true;
  return false;
}

bool fully_spent(const World& w) {
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c)
    if (w.reads_left[c] != 0 || w.writes_left[c] != 0) return false;
  return true;
}

/// State invariants: exclusivity, deadlock, stuck-disable, and (at full
/// termination) serialization completeness.  Returns the violated
/// invariant name or nullptr.
const char* check_state(const World& w, const CheckConfig& cfg,
                        std::string& detail) {
  if (cfg.check_exclusivity) {
    NodeId first_owner = kNoNode;
    for (NodeId node = 0; node < w.num_nodes(); ++node) {
      const auto cls = protocols::classify_state(
          cfg.protocol, w.machines[node]->state_name());
      if (cls != protocols::CopyClass::kExclusive) continue;
      if (first_owner == kNoNode) {
        first_owner = node;
      } else {
        detail = strfmt("nodes %u (%s) and %u (%s) both hold exclusive "
                        "copies",
                        first_owner,
                        w.machines[first_owner]->state_name(), node,
                        w.machines[node]->state_name());
        return "exclusivity";
      }
    }
  }
  if (!channels_empty(w)) return nullptr;
  for (std::size_t c = 0; c + 1 < w.num_nodes(); ++c) {
    if (w.pending[c] != 0) {
      detail = strfmt("client %zu has a pending %s but no message is in "
                      "flight anywhere",
                      c,
                      fsm::to_string(static_cast<fsm::OpKind>(
                          w.pending[c] - 1)));
      return "deadlock";
    }
  }
  for (std::size_t n = 0; n < w.num_nodes(); ++n) {
    if (w.disabled[n] != 0) {
      detail = strfmt("node %zu left its local queue disabled at "
                      "quiescence",
                      n);
      return "stuck-disable";
    }
  }
  if (fully_spent(w)) {
    for (std::uint64_t v = 1; v <= w.version_counter; ++v) {
      if (w.commit_log.find(v) == w.commit_log.end()) {
        detail = strfmt("terminal state: drawn version %llu was never "
                        "bound to a value",
                        static_cast<unsigned long long>(v));
        return "serialization";
      }
    }
    std::unordered_set<std::uint64_t> committed;
    for (const auto& [version, value] : w.commit_log)
      committed.insert(value);
    for (const auto& [value, writer] : w.issued) {
      if (committed.find(value) == committed.end()) {
        detail = strfmt("terminal state: client %u's write (value %llu) "
                        "was never serialized",
                        writer, static_cast<unsigned long long>(value));
        return "serialization";
      }
    }
  }
  return nullptr;
}

/// Quiescent read-agreement probe: on a clone of a quiescent state, issue
/// one read at `client` and deterministically drain every channel.  The
/// read must complete and return the latest serialized write — a copy
/// that survived an invalidation, or missed an update, fails here.  Under
/// ConvergenceLevel::kWriterMayLag a client that issued a write is only
/// held to serialized consistency (checked inside the Ctx callbacks), not
/// to latest-value agreement.
const char* probe_read(const World& quiescent, NodeId client,
                       const CheckConfig& cfg, std::string& detail) {
  const std::size_t capacity = cfg.channel_capacity;
  World w = quiescent.clone();
  StepOutcome out;
  Message request;
  ++w.reads_left[client];  // apply_issue debits one read
  apply_issue(w, client, OpKind::kRead, capacity, out, request);
  std::size_t steps = 0;
  while (out.invariant == nullptr) {
    bool delivered = false;
    for (std::size_t src = 0; src < w.num_nodes() && !delivered; ++src) {
      for (std::size_t dst = 0; dst < w.num_nodes() && !delivered; ++dst) {
        if (w.channels[src * w.num_nodes() + dst].empty()) continue;
        Message msg;
        apply_deliver(w, static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      capacity, out, msg);
        delivered = true;
      }
    }
    if (!delivered) break;
    if (++steps > 10000) {
      detail = strfmt("read probe at client %u did not converge within "
                      "10000 deliveries",
                      client);
      return "read-probe";
    }
  }
  if (out.invariant != nullptr) {
    detail = strfmt("read probe at client %u: %s", client,
                    out.detail.c_str());
    return out.invariant;
  }
  if (!out.read_returned) {
    detail = strfmt("read probe at client %u never returned data", client);
    return "read-probe";
  }
  if (protocols::convergence_level(cfg.protocol) ==
      protocols::ConvergenceLevel::kWriterMayLag) {
    for (const auto& [value, writer] : quiescent.issued)
      if (writer == client) return nullptr;  // lagging writer: consistency
                                             // was checked per delivery
  }
  const auto own = quiescent.issued.find(out.read_value);
  const bool own_write =
      own != quiescent.issued.end() && own->second == client;
  if (out.read_value != quiescent.latest_value) {
    detail = strfmt("read probe at client %u returned value %llu, latest "
                    "serialized write is %llu (version %llu)",
                    client,
                    static_cast<unsigned long long>(out.read_value),
                    static_cast<unsigned long long>(quiescent.latest_value),
                    static_cast<unsigned long long>(
                        quiescent.latest_version));
    return "read-probe";
  }
  if (out.read_version != quiescent.latest_version && !own_write) {
    detail = strfmt("read probe at client %u returned version %llu, "
                    "latest is %llu",
                    client,
                    static_cast<unsigned long long>(out.read_version),
                    static_cast<unsigned long long>(
                        quiescent.latest_version));
    return "read-probe";
  }
  return nullptr;
}

}  // namespace

CheckResult check_protocol(const CheckConfig& cfg) {
  DRSM_CHECK(cfg.num_clients >= 1, "check: need at least one client");
  DRSM_CHECK(cfg.num_clients <= 250, "check: too many clients");
  DRSM_CHECK(cfg.channel_capacity >= 1 && cfg.channel_capacity <= 255,
             "check: channel_capacity must be in [1, 255]");
  DRSM_CHECK(cfg.reads_per_client <= 255 && cfg.writes_per_client <= 255,
             "check: per-client budgets must fit a byte");

  const std::size_t nodes = cfg.num_clients + 1;
  World init;
  init.machines.reserve(nodes);
  for (NodeId node = 0; node < nodes; ++node)
    init.machines.push_back(
        cfg.machine_factory
            ? cfg.machine_factory(node)
            : protocols::make_machine(cfg.protocol, node,
                                      cfg.num_clients));
  init.channels.resize(nodes * nodes);
  init.reads_left.assign(cfg.num_clients,
                         static_cast<std::uint8_t>(cfg.reads_per_client));
  init.writes_left.assign(cfg.num_clients,
                          static_cast<std::uint8_t>(cfg.writes_per_client));
  init.pending.assign(cfg.num_clients, 0);
  init.disabled.assign(nodes, 0);
  init.last_read_version.assign(nodes, 0);

  CheckResult res;
  struct TreeNode {
    std::int64_t parent = -1;
    CheckStep step;
    std::size_t depth = 0;
  };
  std::vector<TreeNode> tree;
  std::unordered_set<std::string> visited;
  std::deque<std::pair<World, std::size_t>> frontier;
  std::set<std::string> names;

  auto record_names = [&](const World& w) {
    for (const auto& machine : w.machines) names.insert(machine->state_name());
  };
  auto trace_to = [&](std::int64_t parent, const CheckStep* last) {
    std::vector<CheckStep> steps;
    if (last != nullptr) steps.push_back(*last);
    for (std::int64_t at = parent; at > 0; at = tree[at].parent)
      steps.push_back(tree[at].step);
    std::reverse(steps.begin(), steps.end());
    return steps;
  };
  auto fail = [&](std::int64_t parent, const CheckStep* last,
                  const char* invariant, std::string detail) {
    res.violations.push_back({invariant, std::move(detail)});
    res.counterexample = trace_to(parent, last);
  };
  auto probe_state = [&](const World& w, std::int64_t parent,
                         const CheckStep* last) {
    if (!cfg.probe_quiescent_reads) return true;
    if (!channels_empty(w) || any_pending(w)) return true;
    for (NodeId client = 0; client < cfg.num_clients; ++client) {
      ++res.probes;
      std::string detail;
      const char* inv = probe_read(w, client, cfg, detail);
      if (inv != nullptr) {
        fail(parent, last, inv, std::move(detail));
        return false;
      }
    }
    return true;
  };

  std::vector<std::uint8_t> key;
  encode_key(init, key);
  visited.emplace(key.begin(), key.end());
  tree.push_back({});
  record_names(init);
  {
    std::string detail;
    const char* inv = check_state(init, cfg, detail);
    if (inv != nullptr)
      fail(0, nullptr, inv, std::move(detail));
    else
      probe_state(init, 0, nullptr);
  }
  if (res.violations.empty()) frontier.emplace_back(std::move(init), 0);

  while (!frontier.empty() && res.violations.empty()) {
    auto [w, index] = std::move(frontier.front());
    frontier.pop_front();
    const std::size_t depth = tree[index].depth;

    // Successor candidates: every issueable (client, op) pair and every
    // nonempty channel head.
    struct Candidate {
      CheckStep::Kind kind;
      NodeId node = 0;
      NodeId src = 0;
      OpKind op = OpKind::kRead;
    };
    std::vector<Candidate> candidates;
    for (NodeId c = 0; c < cfg.num_clients; ++c) {
      if (w.pending[c] != 0 || w.disabled[c] != 0) continue;
      if (w.reads_left[c] > 0)
        candidates.push_back({CheckStep::Kind::kIssue, c, 0, OpKind::kRead});
      if (w.writes_left[c] > 0)
        candidates.push_back(
            {CheckStep::Kind::kIssue, c, 0, OpKind::kWrite});
    }
    for (NodeId src = 0; src < nodes; ++src)
      for (NodeId dst = 0; dst < nodes; ++dst)
        if (!w.channels[src * nodes + dst].empty())
          candidates.push_back(
              {CheckStep::Kind::kDeliver, dst, src, OpKind::kRead});

    for (const Candidate& cand : candidates) {
      World s = w.clone();
      StepOutcome out;
      CheckStep step;
      step.kind = cand.kind;
      step.node = cand.node;
      ++res.transitions;
      if (cand.kind == CheckStep::Kind::kIssue) {
        step.op = cand.op;
        apply_issue(s, cand.node, cand.op, cfg.channel_capacity, out,
                    step.msg);
      } else {
        step.src = cand.src;
        apply_deliver(s, cand.src, cand.node, cfg.channel_capacity, out,
                      step.msg);
      }
      if (out.truncated) {
        ++res.truncated;
        continue;
      }
      if (out.invariant != nullptr) {
        fail(static_cast<std::int64_t>(index), &step, out.invariant,
             std::move(out.detail));
        break;
      }
      {
        std::string detail;
        const char* inv = check_state(s, cfg, detail);
        if (inv != nullptr) {
          fail(static_cast<std::int64_t>(index), &step, inv,
               std::move(detail));
          break;
        }
      }
      encode_key(s, key);
      if (!visited.emplace(key.begin(), key.end()).second) continue;
      record_names(s);
      if (!probe_state(s, static_cast<std::int64_t>(index), &step)) break;
      if (visited.size() >= cfg.max_states) {
        res.hit_state_cap = true;
        break;
      }
      tree.push_back(
          {static_cast<std::int64_t>(index), step, depth + 1});
      res.max_depth = std::max(res.max_depth, depth + 1);
      frontier.emplace_back(std::move(s), tree.size() - 1);
    }
    if (res.hit_state_cap) break;
  }

  res.states = visited.size();
  res.visited_state_names.assign(names.begin(), names.end());
  return res;
}

void export_counterexample(const CheckResult& result, obs::EventSink& out) {
  if (result.ok()) return;
  for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
    const CheckStep& step = result.counterexample[i];
    obs::TraceEvent event;
    event.time = static_cast<double>(i);
    event.kind = obs::EventKind::kCheckStep;
    event.node = step.node;
    event.peer = step.src;
    event.token = step.msg.token;
    event.op = step.op;
    event.detail =
        step.kind == CheckStep::Kind::kIssue ? "issue" : "deliver";
    out.on_event(event);
  }
  obs::TraceEvent event;
  event.time = static_cast<double>(result.counterexample.size());
  event.kind = obs::EventKind::kViolation;
  event.detail = result.violations.front().invariant;
  out.on_event(event);
}

std::string dump_counterexample(const CheckResult& result,
                                obs::FlightRecorder& recorder,
                                const std::string& path) {
  if (result.ok()) return {};
  export_counterexample(result, recorder);
  const Violation& v = result.violations.front();
  return recorder.dump(path, std::string(v.invariant) +
                                 (v.detail.empty() ? "" : ": " + v.detail));
}

}  // namespace drsm::check
