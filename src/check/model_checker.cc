// Two search engines behind one entry point:
//
//  * check_full — the exact reference: serial BFS deduplicating on full
//    state-key bytes, every enabled action expanded at every state.  This
//    is the engine the reduction-soundness tests compare against.
//  * check_reduced — the scaled engine: symmetry-canonicalized 64-bit
//    keys in a lock-free visited set, pure-absorption partial-order
//    reduction, and per-depth parallel expansion over exec::ThreadPool.
//    Each BFS depth is a barrier: workers expand frontier entries into
//    per-entry result buffers, then a serial in-order merge assigns tree
//    nodes and picks the lowest-index violation, so reported counts and
//    counterexamples are schedule-independent (the one exception,
//    symmetry_hits, is documented at its field).
//
// The state semantics both engines share — World, step application,
// invariants, probes, canonicalization, the snapshot codec — live in
// check/world.h.
#include "check/model_checker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <set>
#include <unordered_set>
#include <utility>

#include "check/state_store.h"
#include "check/world.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "support/error.h"
#include "support/hash.h"

namespace drsm::check {
namespace {

using fsm::Message;
using fsm::OpKind;

struct TreeNode {
  std::int64_t parent = -1;
  CheckStep step;
  std::size_t depth = 0;
};

std::vector<CheckStep> trace_to(const std::vector<TreeNode>& tree,
                                std::int64_t parent, const CheckStep* last) {
  std::vector<CheckStep> steps;
  if (last != nullptr) steps.push_back(*last);
  for (std::int64_t at = parent; at > 0; at = tree[at].parent)
    steps.push_back(tree[at].step);
  std::reverse(steps.begin(), steps.end());
  return steps;
}

/// Successor candidates at `w`: every issueable (client, op) pair and
/// every nonempty channel head, in a fixed deterministic order.
struct Candidate {
  CheckStep::Kind kind = CheckStep::Kind::kIssue;
  NodeId node = 0;
  NodeId src = 0;
  OpKind op = OpKind::kRead;
};

void enumerate_candidates(const World& w, std::vector<Candidate>& out) {
  out.clear();
  const std::size_t nodes = w.num_nodes();
  const std::size_t clients = nodes - 1;
  for (NodeId c = 0; c < clients; ++c) {
    if (w.pending[c] != 0 || w.disabled[c] != 0) continue;
    if (w.reads_left[c] > 0)
      out.push_back({CheckStep::Kind::kIssue, c, 0, OpKind::kRead});
    if (w.writes_left[c] > 0)
      out.push_back({CheckStep::Kind::kIssue, c, 0, OpKind::kWrite});
  }
  for (NodeId src = 0; src < nodes; ++src)
    for (NodeId dst = 0; dst < nodes; ++dst)
      if (!w.channels[src * nodes + dst].empty())
        out.push_back({CheckStep::Kind::kDeliver, dst, src, OpKind::kRead});
}

/// The exact serial reference engine (CheckConfig::Expansion::
/// kFullExpansion): the pre-reduction checker, kept verbatim in
/// behaviour — full-key dedup, no reductions, single thread.
CheckResult check_full(const CheckConfig& cfg) {
  World init = make_initial_world(cfg);

  CheckResult res;
  std::vector<TreeNode> tree;
  std::unordered_set<std::string> visited;
  std::deque<std::pair<World, std::size_t>> frontier;
  std::set<std::string> names;

  auto record_names = [&](const World& w) {
    for (const auto& machine : w.machines) names.insert(machine->state_name());
  };
  auto fail = [&](std::int64_t parent, const CheckStep* last,
                  const char* invariant, std::string detail) {
    res.violations.push_back({invariant, std::move(detail)});
    res.counterexample = trace_to(tree, parent, last);
  };
  auto probe_state = [&](const World& w, std::int64_t parent,
                         const CheckStep* last) {
    if (!cfg.probe_quiescent_reads) return true;
    if (!channels_empty(w) || any_pending(w)) return true;
    for (NodeId client = 0; client < cfg.num_clients; ++client) {
      ++res.probes;
      std::string detail;
      const char* inv = probe_read(w, client, cfg, detail);
      if (inv != nullptr) {
        fail(parent, last, inv, std::move(detail));
        return false;
      }
    }
    return true;
  };

  std::vector<std::uint8_t> key;
  encode_key(init, key);
  visited.emplace(key.begin(), key.end());
  tree.push_back({});
  record_names(init);
  {
    std::string detail;
    const char* inv = check_state(init, cfg, detail);
    if (inv != nullptr)
      fail(0, nullptr, inv, std::move(detail));
    else
      probe_state(init, 0, nullptr);
  }
  if (res.violations.empty()) frontier.emplace_back(std::move(init), 0);

  std::vector<Candidate> candidates;
  while (!frontier.empty() && res.violations.empty()) {
    auto [w, index] = std::move(frontier.front());
    frontier.pop_front();
    const std::size_t depth = tree[index].depth;
    enumerate_candidates(w, candidates);

    for (const Candidate& cand : candidates) {
      World s = w.clone();
      StepOutcome out;
      CheckStep step;
      step.kind = cand.kind;
      step.node = cand.node;
      ++res.transitions;
      if (cand.kind == CheckStep::Kind::kIssue) {
        step.op = cand.op;
        apply_issue(s, cand.node, cand.op, cfg.channel_capacity, out,
                    step.msg);
      } else {
        step.src = cand.src;
        apply_deliver(s, cand.src, cand.node, cfg.channel_capacity, out,
                      step.msg);
      }
      if (out.truncated) {
        ++res.truncated;
        continue;
      }
      if (out.invariant != nullptr) {
        fail(static_cast<std::int64_t>(index), &step, out.invariant,
             std::move(out.detail));
        break;
      }
      {
        std::string detail;
        const char* inv = check_state(s, cfg, detail);
        if (inv != nullptr) {
          fail(static_cast<std::int64_t>(index), &step, inv,
               std::move(detail));
          break;
        }
      }
      encode_key(s, key);
      if (!visited.emplace(key.begin(), key.end()).second) continue;
      record_names(s);
      if (!probe_state(s, static_cast<std::int64_t>(index), &step)) break;
      if (visited.size() >= cfg.max_states) {
        res.hit_state_cap = true;
        break;
      }
      tree.push_back({static_cast<std::int64_t>(index), step, depth + 1});
      res.max_depth = std::max(res.max_depth, depth + 1);
      frontier.emplace_back(std::move(s), tree.size() - 1);
    }
    if (res.hit_state_cap) break;
  }

  res.states = visited.size();
  res.visited_state_names.assign(names.begin(), names.end());
  return res;
}

/// One queued frontier state: a byte snapshot when the machines support
/// the exact codec, a live clone otherwise, plus its search-tree index.
struct Entry {
  std::vector<std::uint8_t> bytes;
  std::unique_ptr<World> world;
  std::size_t tree = 0;
};

/// One newly claimed successor produced by a worker, pending the serial
/// merge that assigns its tree node.
struct SuccessorOut {
  CheckStep step;
  std::vector<std::uint8_t> bytes;
  std::unique_ptr<World> world;
};

/// Everything a worker learned expanding one frontier entry.  Workers
/// write only their own slot; the depth-barrier merge folds the slots in
/// entry order.
struct EntryResult {
  std::vector<SuccessorOut> succs;
  std::size_t transitions = 0;
  std::size_t truncated = 0;
  std::size_t por_pruned = 0;
  std::size_t symmetry_hits = 0;
  std::size_t probes = 0;
  std::set<const char*> names;  // state_name() literals of inserted states
  const char* invariant = nullptr;  // first violation, candidate order
  std::string detail;
  CheckStep bad_step;
  bool overflow = false;
};

/// The scaled engine: canonical-hash dedup (lock-free StateStore),
/// pure-absorption POR, per-depth parallel expansion, compact frontier.
CheckResult check_reduced(const CheckConfig& cfg) {
  World init = make_initial_world(cfg);

  // The reductions require trusted state encodings, so both are gated on
  // the stock protocol machines (a machine_factory can inject fragments
  // whose default encode_state/encode_relabeled would under-report).
  // trust_factory_encodings lifts the gate for factories whose machines
  // implement the full codec contract (the migration wrappers).
  const bool trusted = !cfg.machine_factory || cfg.trust_factory_encodings;
  const bool symmetry = cfg.symmetry_reduction && trusted &&
                        cfg.num_clients >= 2 && supports_relabeling(init);
  const bool por = cfg.partial_order_reduction && trusted;

  std::vector<std::vector<NodeId>> perms;
  if (symmetry) perms = client_permutations(cfg.num_clients);

  // Hash of the dedup key: canonical over the permutation orbit when
  // symmetry applies, plain behaviour key otherwise.
  auto state_hash = [&](const World& w, std::vector<std::uint8_t>& scratch,
                        bool& nontrivial) {
    if (symmetry) {
      const CanonicalHash ch = canonical_hash(w, perms, scratch);
      nontrivial = ch.nontrivial;
      return ch.hash;
    }
    nontrivial = false;
    encode_key(w, scratch);
    return hash_bytes(scratch.data(), scratch.size());
  };

  // Compact frontier only when every machine round-trips through the
  // exact snapshot codec; otherwise fall back to live clones.
  std::vector<std::uint8_t> init_bytes;
  serialize_world(init, init_bytes);
  bool compact;
  {
    World probe;
    compact = deserialize_world(cfg, init_bytes.data(),
                                init_bytes.data() + init_bytes.size(),
                                probe);
  }

  exec::ThreadPool pool(cfg.threads);

  CheckResult res;
  res.symmetry_applied = symmetry;
  res.por_applied = por;
  res.compact_frontier = compact;
  res.threads_used = pool.threads();

  // Upper bound on successors of one state: every client issuing plus
  // every directed channel delivering its head.  reserve()ing for
  // width * bound before each depth means claim() can never spuriously
  // overflow mid-depth, while small runs never pay for the full
  // max_states allocation.
  const std::size_t succ_bound =
      cfg.num_clients + (cfg.num_clients + 1) * (cfg.num_clients + 1);
  StateStore store(std::min<std::size_t>(cfg.max_states, 1u << 15));
  std::vector<TreeNode> tree;
  std::set<std::string> names;

  auto record_names = [&](const World& w) {
    for (const auto& machine : w.machines) names.insert(machine->state_name());
  };
  auto fail = [&](std::int64_t parent, const CheckStep* last,
                  const char* invariant, std::string detail) {
    res.violations.push_back({invariant, std::move(detail)});
    res.counterexample = trace_to(tree, parent, last);
  };

  {
    std::vector<std::uint8_t> scratch;
    bool nontrivial = false;
    store.claim(state_hash(init, scratch, nontrivial));
  }
  tree.push_back({});
  record_names(init);
  {
    std::string detail;
    const char* inv = check_state(init, cfg, detail);
    if (inv != nullptr) {
      fail(0, nullptr, inv, std::move(detail));
    } else if (cfg.probe_quiescent_reads && channels_empty(init) &&
               !any_pending(init)) {
      for (NodeId client = 0; client < cfg.num_clients; ++client) {
        ++res.probes;
        std::string probe_detail;
        const char* probe_inv = probe_read(init, client, cfg, probe_detail);
        if (probe_inv != nullptr) {
          fail(0, nullptr, probe_inv, std::move(probe_detail));
          break;
        }
      }
    }
  }

  std::vector<Entry> frontier;
  if (res.violations.empty()) {
    Entry e;
    if (compact)
      e.bytes = std::move(init_bytes);
    else
      e.world = std::make_unique<World>(std::move(init));
    frontier.push_back(std::move(e));
  }

  // When the pool is one thread, parallel_for degenerates to an in-order
  // inline loop, so a shared stop flag reproduces the reference engine's
  // early exit exactly.  With real parallelism the flag is only set on
  // overflow: every entry still runs to completion on a violation, so
  // the merge always sees the lowest-(entry, candidate) one regardless
  // of schedule.
  const bool serial = pool.threads() == 1;

  std::size_t depth = 0;
  while (!frontier.empty() && res.violations.empty() &&
         !res.hit_state_cap) {
    const std::size_t width = frontier.size();
    store.reserve(store.size() + width * succ_bound);
    std::vector<EntryResult> results(width);
    std::atomic<bool> stop{false};

    auto expand = [&](std::size_t i) {
      if (stop.load(std::memory_order_relaxed)) return;
      EntryResult& r = results[i];
      const Entry& entry = frontier[i];

      World local;
      if (compact) {
        const bool ok = deserialize_world(
            cfg, entry.bytes.data(),
            entry.bytes.data() + entry.bytes.size(), local);
        DRSM_CHECK(ok, "check: snapshot round-trip failed mid-search");
      }
      const World& w = compact ? local : *entry.world;

      std::vector<Candidate> candidates;
      enumerate_candidates(w, candidates);
      if (por && candidates.size() > 1) {
        for (const Candidate& cand : candidates) {
          if (cand.kind != CheckStep::Kind::kDeliver) continue;
          if (!pure_absorption(w, cand.src, cand.node)) continue;
          r.por_pruned += candidates.size() - 1;
          const Candidate chosen = cand;
          candidates.assign(1, chosen);
          break;
        }
      }

      std::vector<std::uint8_t> scratch;
      for (const Candidate& cand : candidates) {
        if (stop.load(std::memory_order_relaxed)) return;
        World s = w.clone();
        StepOutcome out;
        CheckStep step;
        step.kind = cand.kind;
        step.node = cand.node;
        ++r.transitions;
        if (cand.kind == CheckStep::Kind::kIssue) {
          step.op = cand.op;
          apply_issue(s, cand.node, cand.op, cfg.channel_capacity, out,
                      step.msg);
        } else {
          step.src = cand.src;
          apply_deliver(s, cand.src, cand.node, cfg.channel_capacity, out,
                        step.msg);
        }
        if (out.truncated) {
          ++r.truncated;
          continue;
        }
        if (out.invariant != nullptr) {
          r.invariant = out.invariant;
          r.detail = std::move(out.detail);
          r.bad_step = step;
          if (serial) stop.store(true, std::memory_order_relaxed);
          return;
        }
        {
          std::string detail;
          const char* inv = check_state(s, cfg, detail);
          if (inv != nullptr) {
            r.invariant = inv;
            r.detail = std::move(detail);
            r.bad_step = step;
            if (serial) stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
        bool nontrivial = false;
        const std::uint64_t h = state_hash(s, scratch, nontrivial);
        const StateStore::Claim claim = store.claim(h);
        if (claim == StateStore::Claim::kOverflow) {
          r.overflow = true;
          stop.store(true, std::memory_order_relaxed);
          return;
        }
        if (claim == StateStore::Claim::kPresent) {
          if (nontrivial) ++r.symmetry_hits;
          continue;
        }
        for (const auto& machine : s.machines)
          r.names.insert(machine->state_name());
        if (cfg.probe_quiescent_reads && channels_empty(s) &&
            !any_pending(s)) {
          const char* probe_inv = nullptr;
          std::string probe_detail;
          for (NodeId client = 0; client < cfg.num_clients; ++client) {
            ++r.probes;
            probe_inv = probe_read(s, client, cfg, probe_detail);
            if (probe_inv != nullptr) break;
          }
          if (probe_inv != nullptr) {
            r.invariant = probe_inv;
            r.detail = std::move(probe_detail);
            r.bad_step = step;
            if (serial) stop.store(true, std::memory_order_relaxed);
            return;
          }
        }
        if (store.size() >= cfg.max_states) {
          r.overflow = true;
          stop.store(true, std::memory_order_relaxed);
          // Keep this last successor: it was claimed before the cap hit.
        }
        SuccessorOut succ;
        succ.step = step;
        if (compact)
          serialize_world(s, succ.bytes);
        else
          succ.world = std::make_unique<World>(std::move(s));
        r.succs.push_back(std::move(succ));
        if (r.overflow) return;
      }
    };
    pool.parallel_for(width, expand);

    // Serial in-order merge: fold counters, pick the lowest-index
    // violation, assign tree nodes and the next frontier.
    std::vector<Entry> next;
    bool violated = false;
    for (std::size_t i = 0; i < width; ++i) {
      EntryResult& r = results[i];
      res.transitions += r.transitions;
      res.truncated += r.truncated;
      res.por_pruned += r.por_pruned;
      res.symmetry_hits += r.symmetry_hits;
      res.probes += r.probes;
      for (const char* name : r.names) names.insert(name);
      if (r.overflow) res.hit_state_cap = true;
      if (r.invariant != nullptr && !violated) {
        violated = true;
        fail(static_cast<std::int64_t>(frontier[i].tree), &r.bad_step,
             r.invariant, std::move(r.detail));
      }
      if (violated) continue;
      for (SuccessorOut& succ : r.succs) {
        tree.push_back({static_cast<std::int64_t>(frontier[i].tree),
                        succ.step, depth + 1});
        res.max_depth = std::max(res.max_depth, depth + 1);
        Entry e;
        e.bytes = std::move(succ.bytes);
        e.world = std::move(succ.world);
        e.tree = tree.size() - 1;
        next.push_back(std::move(e));
      }
    }
    frontier = std::move(next);
    ++depth;
  }

  res.states = store.size();
  res.visited_state_names.assign(names.begin(), names.end());
  return res;
}

void publish_metrics(const CheckConfig& cfg, const CheckResult& res) {
  if (cfg.metrics == nullptr) return;
  obs::MetricsRegistry& m = *cfg.metrics;
  m.counter("check.states").inc(res.states);
  m.counter("check.transitions").inc(res.transitions);
  m.counter("check.symmetry_hits").inc(res.symmetry_hits);
  m.counter("check.por_pruned").inc(res.por_pruned);
  m.gauge("check.states_per_sec").set(res.states_per_sec());
  m.gauge("check.wall_ms").set(res.wall_seconds * 1e3);
  m.gauge("check.max_depth").set(static_cast<double>(res.max_depth));
}

}  // namespace

CheckResult check_protocol(const CheckConfig& cfg) {
  DRSM_CHECK(cfg.num_clients >= 1, "check: need at least one client");
  DRSM_CHECK(cfg.num_clients <= 250, "check: too many clients");
  DRSM_CHECK(cfg.channel_capacity >= 1 && cfg.channel_capacity <= 255,
             "check: channel_capacity must be in [1, 255]");
  DRSM_CHECK(cfg.reads_per_client <= 255 && cfg.writes_per_client <= 255,
             "check: per-client budgets must fit a byte");

  const auto start = std::chrono::steady_clock::now();
  CheckResult res = cfg.expansion == CheckConfig::Expansion::kFullExpansion
                        ? check_full(cfg)
                        : check_reduced(cfg);
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  publish_metrics(cfg, res);
  return res;
}

void export_counterexample(const CheckResult& result, obs::EventSink& out) {
  if (result.ok()) return;
  for (std::size_t i = 0; i < result.counterexample.size(); ++i) {
    const CheckStep& step = result.counterexample[i];
    obs::TraceEvent event;
    event.time = static_cast<double>(i);
    event.kind = obs::EventKind::kCheckStep;
    event.node = step.node;
    event.peer = step.src;
    event.token = step.msg.token;
    event.op = step.op;
    event.detail =
        step.kind == CheckStep::Kind::kIssue ? "issue" : "deliver";
    out.on_event(event);
  }
  obs::TraceEvent event;
  event.time = static_cast<double>(result.counterexample.size());
  event.kind = obs::EventKind::kViolation;
  event.detail = result.violations.front().invariant;
  out.on_event(event);
}

std::string dump_counterexample(const CheckResult& result,
                                obs::FlightRecorder& recorder,
                                const std::string& path) {
  if (result.ok()) return {};
  export_counterexample(result, recorder);
  const Violation& v = result.violations.front();
  return recorder.dump(path, std::string(v.invariant) +
                                 (v.detail.empty() ? "" : ": " + v.detail));
}

}  // namespace drsm::check
