// CoherenceOracle: an independent sequential-consistency referee.
//
// The oracle attaches to a runtime as a sim::CoherenceTap and rebuilds the
// object's serialized history from the commit_write reports alone — it
// never looks at the machines' internal value/version fields, so it checks
// the protocols rather than trusting them.  Three ingredients:
//
//  * the issue log: every application write that entered the system, with
//    its (unique) value and issuing node;
//  * the commit log: the sequencer's serialization order, a version->value
//    binding that must never be rebound (duplicate reports of the same
//    pair are fine — two-phase protocols report from both ends);
//  * the read log: every value returned to an application, checked against
//    the commit log as it happens.
//
// Two strictness levels match the two runtimes.  Under kSequential
// (SequentialRuntime: one atomic operation at a time) every read must
// return the *latest* serialized write.  Under kConcurrent
// (EventSimulator: operations overlap, invalidations travel with latency)
// a read may be stale, but must still return some serialized (version,
// value) pair and versions must be non-decreasing per node.  Both modes
// allow the one deliberate exception: a node may see its *own* issued
// write before (or without) learning its sequence number — Dragon clients
// apply their writes optimistically and keep a stale version until the
// next foreign update arrives.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/flight_recorder.h"
#include "sim/coherence_tap.h"

namespace drsm::check {

enum class OracleMode : std::uint8_t {
  kConcurrent,  // reads may be stale, per-node versions non-decreasing
  kSequential,  // reads must return the latest serialized write
};

class CoherenceOracle final : public sim::CoherenceTap {
 public:
  explicit CoherenceOracle(OracleMode mode = OracleMode::kConcurrent);

  void on_write_issue(double time, NodeId node, ObjectId object,
                      std::uint64_t value) override;
  void on_commit(double time, NodeId node, ObjectId object,
                 std::uint64_t version, std::uint64_t value) override;
  void on_read(double time, NodeId node, ObjectId object,
               std::uint64_t value, std::uint64_t version) override;

  /// End-of-run check: the version sequence is contiguous (1..latest, no
  /// gaps) per object.  Issued-but-unserialized writes are *not* flagged
  /// here — a simulator run stops at max_ops with writes legitimately in
  /// flight; the model checker makes that check itself at fully-spent
  /// terminal states.  Call after the runtime drains; idempotent.
  void finish();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Attaches a flight recorder for post-mortems: on the *first* violation
  /// the oracle appends a kViolation marker to the recorder's ring and
  /// dumps it as JSONL to `dump_path` (empty path = record the marker but
  /// leave dumping to the caller).  Typically the same recorder is also
  /// the runtime's event sink, so the dump shows the window of traffic
  /// leading up to the violation.  Pass nullptr to detach.
  void set_flight_recorder(obs::FlightRecorder* recorder,
                           std::string dump_path = {});

  /// One read as the application saw it, in tap order (the differential
  /// tests compare these sequences across protocols).
  struct ReadRecord {
    double time = 0.0;
    NodeId node = 0;
    ObjectId object = 0;
    std::uint64_t value = 0;
    std::uint64_t version = 0;
  };
  const std::vector<ReadRecord>& reads() const { return reads_; }

  std::size_t commits() const { return commit_count_; }
  std::size_t issues() const { return issue_count_; }

  /// Serialized content of `object` at `version` (0 = not serialized).
  std::uint64_t value_at(ObjectId object, std::uint64_t version) const;

 private:
  struct ObjectLog {
    std::unordered_map<std::uint64_t, std::uint64_t> by_version;
    std::uint64_t latest_version = 0;
    std::uint64_t latest_value = 0;
  };

  ObjectLog& log(ObjectId object);
  void violation(std::string text);

  OracleMode mode_;
  std::unordered_map<ObjectId, ObjectLog> logs_;
  // value -> issuing node (write values are unique by construction: the
  // runtimes and harnesses number them from a single counter).
  std::unordered_map<std::uint64_t, NodeId> issued_;
  // (node, object) -> highest version read so far.
  std::unordered_map<std::uint64_t, std::uint64_t> last_read_version_;
  std::vector<ReadRecord> reads_;
  std::vector<std::string> violations_;
  std::size_t commit_count_ = 0;
  std::size_t issue_count_ = 0;
  obs::FlightRecorder* recorder_ = nullptr;
  std::string dump_path_;
};

}  // namespace drsm::check
