// Lock-free visited set for the parallel frontier BFS.
//
// The checker dedups on 64-bit canonical state keys (check/world.h), so
// the visited structure only needs *membership with first-claim*: claim()
// answers "did this call insert the key?" with one CAS on the owning
// slot.  The layout is the interning pattern of analytic/interner.h —
// fixed-capacity open addressing over power-of-two slot arrays — made
// concurrent: slots are atomic, claimed by compare-exchange from empty,
// and sharded by the key's high bits so concurrent claims rarely touch
// the same cache lines, let alone the same slot chain.
//
// Capacity is fixed *between barriers*, which is what makes lock-freedom
// this simple: no rehash ever happens while claimers run, so a slot once
// published never moves.  The checker grows the store only at its BFS
// depth barrier via reserve() — a serial rebuild, called when no claimer
// is in flight — sized for the worst-case successor count of the next
// depth, so claim() never runs out of slots mid-depth in practice.
// Running out anyway is reported via claim() == kOverflow and treated by
// the checker exactly like hitting the state cap.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace drsm::check {

class StateStore {
 public:
  enum class Claim : std::uint8_t {
    kInserted,  // this call claimed the key
    kPresent,   // some earlier claim holds it
    kOverflow,  // the owning shard is full; treat as a state cap
  };

  /// Sizes the store for up to `expected_max` distinct keys.
  explicit StateStore(std::size_t expected_max);

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  /// Thread-safe, lock-free.  Key 0 is remapped internally (the empty
  /// slot marker), so every 64-bit value is a valid key.
  Claim claim(std::uint64_t key);

  /// Grows capacity to hold `expected_max` keys (no-op if it already
  /// does), rehashing every claimed key into the new slot arrays.  NOT
  /// thread-safe: callers must guarantee no claim() is in flight — the
  /// checker calls this only at its depth barrier.
  void reserve(std::size_t expected_max);

  /// Keys the current slot arrays are sized for (the constructor /
  /// reserve() `expected_max` they satisfy, not the raw slot count).
  std::size_t capacity() const { return capacity_; }

  /// Number of successful inserts.  Exact once concurrent claimers have
  /// synchronized (e.g. at the BFS depth barrier); monotone otherwise.
  std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };

  static constexpr std::size_t kShards = 16;  // fixed power of two

  void allocate(std::size_t expected_max);
  void insert_unlocked(std::uint64_t key);  // reserve()'s rehash path

  std::vector<Shard> shards_;
  std::size_t capacity_ = 0;         // expected_max the layout satisfies
  std::size_t slots_per_shard_ = 0;  // power of two
  std::size_t slot_mask_ = 0;
  std::size_t max_probe_ = 0;  // fill bound per shard before kOverflow
  std::atomic<std::size_t> size_{0};
};

}  // namespace drsm::check
