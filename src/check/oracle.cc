#include "check/oracle.h"

#include "support/text.h"

namespace drsm::check {

namespace {

// Violation messages are kept useful but bounded: a broken run can produce
// one violation per read, and the first few tell the whole story.
constexpr std::size_t kMaxViolations = 64;

std::uint64_t node_object_key(NodeId node, ObjectId object) {
  return (static_cast<std::uint64_t>(node) << 32) | object;
}

}  // namespace

CoherenceOracle::CoherenceOracle(OracleMode mode) : mode_(mode) {}

CoherenceOracle::ObjectLog& CoherenceOracle::log(ObjectId object) {
  return logs_[object];
}

void CoherenceOracle::set_flight_recorder(obs::FlightRecorder* recorder,
                                          std::string dump_path) {
  recorder_ = recorder;
  dump_path_ = std::move(dump_path);
}

void CoherenceOracle::violation(std::string text) {
  if (violations_.empty() && recorder_ != nullptr) {
    // First violation: mark the ring, then snapshot it while the window
    // of traffic that led here is still retained.
    obs::TraceEvent event;
    event.kind = obs::EventKind::kViolation;
    event.detail = "coherence";
    recorder_->on_event(event);
    if (!dump_path_.empty()) recorder_->dump(dump_path_, text);
  }
  if (violations_.size() < kMaxViolations)
    violations_.push_back(std::move(text));
}

void CoherenceOracle::on_write_issue(double time, NodeId node,
                                     ObjectId object, std::uint64_t value) {
  (void)time;
  (void)object;
  ++issue_count_;
  if (value == 0) {
    violation("write issued with value 0 (reserved for 'never written')");
    return;
  }
  const auto [it, inserted] = issued_.emplace(value, node);
  if (!inserted)
    violation(strfmt("write value %llu issued twice (nodes %u and %u)",
                     static_cast<unsigned long long>(value), it->second,
                     node));
}

void CoherenceOracle::on_commit(double time, NodeId node, ObjectId object,
                                std::uint64_t version, std::uint64_t value) {
  (void)time;
  (void)node;
  ++commit_count_;
  if (version == 0) {
    violation("commit with version 0 (reserved for 'never written')");
    return;
  }
  if (issued_.find(value) == issued_.end())
    violation(strfmt("version %llu commits value %llu that no application "
                     "write issued",
                     static_cast<unsigned long long>(version),
                     static_cast<unsigned long long>(value)));
  ObjectLog& l = log(object);
  const auto [it, inserted] = l.by_version.emplace(version, value);
  if (!inserted) {
    if (it->second != value)
      violation(strfmt("object %u version %llu rebound: value %llu then "
                       "%llu",
                       object, static_cast<unsigned long long>(version),
                       static_cast<unsigned long long>(it->second),
                       static_cast<unsigned long long>(value)));
    return;  // duplicate report of the same pair: fine
  }
  if (version > l.latest_version) {
    l.latest_version = version;
    l.latest_value = value;
  }
}

void CoherenceOracle::on_read(double time, NodeId node, ObjectId object,
                              std::uint64_t value, std::uint64_t version) {
  reads_.push_back({time, node, object, value, version});
  ObjectLog& l = log(object);

  const auto own = issued_.find(value);
  const bool own_write = own != issued_.end() && own->second == node;

  if (mode_ == OracleMode::kSequential) {
    // Atomic operations: the read must observe the latest serialized
    // write.  The version may lag only on the node's own copy of its own
    // write (Dragon's optimistic apply keeps the pre-write version).
    if (value != l.latest_value)
      violation(strfmt("node %u read value %llu, latest serialized write "
                       "of object %u is %llu (version %llu)",
                       node, static_cast<unsigned long long>(value), object,
                       static_cast<unsigned long long>(l.latest_value),
                       static_cast<unsigned long long>(l.latest_version)));
    else if (version != l.latest_version && !own_write)
      violation(strfmt("node %u read version %llu of object %u, expected "
                       "latest version %llu",
                       node, static_cast<unsigned long long>(version),
                       object,
                       static_cast<unsigned long long>(l.latest_version)));
  } else {
    // Concurrent operations: staleness is allowed, fabrication is not.
    if (version == 0) {
      if (value != 0 && !own_write)
        violation(strfmt("node %u read unserialized value %llu of object "
                         "%u (version 0)",
                         node, static_cast<unsigned long long>(value),
                         object));
    } else {
      const auto it = l.by_version.find(version);
      if (it == l.by_version.end()) {
        if (!own_write)
          violation(strfmt("node %u read object %u at version %llu, which "
                           "was never serialized",
                           node, object,
                           static_cast<unsigned long long>(version)));
      } else if (it->second != value && !own_write) {
        violation(strfmt("node %u read (value %llu, version %llu) of "
                         "object %u, but version %llu serialized value "
                         "%llu",
                         node, static_cast<unsigned long long>(value),
                         static_cast<unsigned long long>(version), object,
                         static_cast<unsigned long long>(version),
                         static_cast<unsigned long long>(it->second)));
      }
    }
    // Per-node version monotonicity: a node never travels back in time.
    std::uint64_t& last = last_read_version_[node_object_key(node, object)];
    if (version < last)
      violation(strfmt("node %u read object %u at version %llu after "
                       "version %llu",
                       node, object,
                       static_cast<unsigned long long>(version),
                       static_cast<unsigned long long>(last)));
    if (version > last) last = version;
  }
}

void CoherenceOracle::finish() {
  for (const auto& [object, l] : logs_) {
    for (std::uint64_t v = 1; v <= l.latest_version; ++v)
      if (l.by_version.find(v) == l.by_version.end())
        violation(strfmt("object %u version sequence has a gap at %llu "
                         "(latest %llu)",
                         object, static_cast<unsigned long long>(v),
                         static_cast<unsigned long long>(l.latest_version)));
  }
}

std::uint64_t CoherenceOracle::value_at(ObjectId object,
                                        std::uint64_t version) const {
  const auto lit = logs_.find(object);
  if (lit == logs_.end()) return 0;
  const auto vit = lit->second.by_version.find(version);
  return vit == lit->second.by_version.end() ? 0 : vit->second;
}

}  // namespace drsm::check
