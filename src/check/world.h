// The model checker's global-state representation and the operations the
// search loop composes: step application, invariant checks, quiescent read
// probes, symmetry canonicalization and the exact-snapshot codec behind
// the compact frontier.  Split out of model_checker.cc so the search
// strategy (serial reference vs reduced parallel BFS) and the state
// semantics evolve independently, and so the reduction machinery is
// testable on its own (tests/check_reduction_test.cc).
//
// Reduction correctness in one paragraph each:
//
// *Symmetry.*  Client nodes run identical machine code and differ only in
// their id, and every invariant is invariant under client relabeling, so
// two global states that differ by a client permutation are bisimilar.
// canonical_hash() therefore keys a state by the minimum, over all client
// permutations, of the hash of its relabeled behaviour encoding (machines
// via fsm::ProtocolMachine::encode_relabeled, channels re-indexed, the
// per-client issue bookkeeping permuted).  The representative that is
// explored is always a genuinely reachable state (the first one seen), so
// counterexample traces need no back-translation.
//
// *Partial order.*  pure_absorption() detects deliveries that change
// nothing at all: the receiving machine's exact state bytes are unchanged
// and no context callback fires (no sends, no completions, no version
// draws, no queue toggles).  Such a delivery commutes with every other
// enabled transition — it only pops one message no other transition can
// observe — so expanding it *alone* (a singleton ample set) preserves
// every invariant verdict; the full argument lives in docs/TESTING.md.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "check/model_checker.h"
#include "fsm/mealy.h"

namespace drsm::check {

/// The complete global state of one explored interleaving.  The fields up
/// to `disabled` are behaviour-relevant and enter the dedup key; the rest
/// is the path-local write history the serialization checks run against
/// (values and versions never select a transition, by the same argument
/// that keeps them out of ProtocolMachine::encode).
struct World {
  std::vector<std::unique_ptr<fsm::ProtocolMachine>> machines;  // node 0..N
  std::vector<std::deque<fsm::Message>> channels;  // src * (N+1) + dst
  std::vector<std::uint8_t> reads_left;            // per client
  std::vector<std::uint8_t> writes_left;           // per client
  std::vector<std::uint8_t> pending;  // per client: 0 or op + 1
  std::vector<std::uint8_t> disabled;  // per node: local queue off

  std::uint64_t version_counter = 0;
  std::uint64_t issue_counter = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> commit_log;  // ver -> val
  std::unordered_map<std::uint64_t, NodeId> issued;  // value -> writer
  std::uint64_t latest_version = 0;
  std::uint64_t latest_value = 0;
  std::vector<std::uint64_t> last_read_version;  // per node

  std::size_t num_nodes() const { return machines.size(); }
  std::size_t num_clients() const { return machines.size() - 1; }

  World clone() const;
};

/// What happened while applying one step to a World.
struct StepOutcome {
  const char* invariant = nullptr;  // first violated invariant, if any
  std::string detail;
  bool truncated = false;  // a send exceeded channel_capacity
  bool read_returned = false;
  std::uint64_t read_value = 0;
  std::uint64_t read_version = 0;

  void violate(const char* inv, std::string text) {
    if (invariant == nullptr) {
      invariant = inv;
      detail = std::move(text);
    }
  }
};

/// The initial state under `cfg`: machines from the factory (or
/// protocols::make_machine), empty channels, full budgets.
World make_initial_world(const CheckConfig& cfg);

/// Client `client` issues `op` (drawing a fresh value for writes) and the
/// issue request runs through its machine.  `request_out` receives the
/// request message for the trace.
void apply_issue(World& w, NodeId client, fsm::OpKind op,
                 std::size_t capacity, StepOutcome& out,
                 fsm::Message& request_out);

/// Delivers the head of channel src->dst to dst's machine.
void apply_deliver(World& w, NodeId src, NodeId dst, std::size_t capacity,
                   StepOutcome& out, fsm::Message& msg_out);

// ---------------------------------------------------------------------------
// Dedup keys and symmetry canonicalization.
// ---------------------------------------------------------------------------

/// All num_clients! client relabelings, identity first, each an array
/// mapping old client id -> new client id.  Built once per check run.
std::vector<std::vector<NodeId>> client_permutations(std::size_t num_clients);

/// Appends the behaviour key of `w` (the encode_full-based encoding the
/// checker dedups on) to `key`.  Identity labeling; defined for every
/// machine.
void encode_key(const World& w, std::vector<std::uint8_t>& key);

/// encode_key under the client relabeling `map`: machines are emitted in
/// new-id order via encode_relabeled, channels re-indexed, message
/// initiators mapped, per-client bookkeeping permuted.  Returns false if
/// some machine does not support relabeling.
bool encode_key_relabeled(const World& w, const NodeId* map,
                          std::vector<std::uint8_t>& key);

/// True when every machine in `w` supports encode_relabeled — the gate
/// for enabling symmetry reduction.
bool supports_relabeling(const World& w);

struct CanonicalHash {
  std::uint64_t hash = 0;  // min over the permutation orbit
  bool nontrivial = false;  // a non-identity permutation beat the identity
};

/// The canonical (permutation-invariant) 64-bit key of `w`: the minimum
/// over `perms` of the hash of the relabeled behaviour key.  `scratch` is
/// reused between calls to avoid per-state allocation.  `perms` must come
/// from client_permutations() (identity first).
CanonicalHash canonical_hash(const World& w,
                             const std::vector<std::vector<NodeId>>& perms,
                             std::vector<std::uint8_t>& scratch);

// ---------------------------------------------------------------------------
// Exact snapshot codec (the compact frontier's storage format).
// ---------------------------------------------------------------------------

/// Serializes *everything* — machines via encode_state, channels with full
/// message payloads, budgets, and the write-history the serialization
/// checks need — so deserialize_world reproduces an indistinguishable
/// World.
void serialize_world(const World& w, std::vector<std::uint8_t>& out);

/// Rebuilds a World from serialize_world bytes, constructing fresh
/// machines under `cfg`.  Returns false when some machine does not
/// support decode_state (the checker then falls back to cloned Worlds).
bool deserialize_world(const CheckConfig& cfg, const std::uint8_t* p,
                       const std::uint8_t* end, World& out);

// ---------------------------------------------------------------------------
// Invariants, probes, and the POR purity test.
// ---------------------------------------------------------------------------

bool channels_empty(const World& w);
bool any_pending(const World& w);
bool fully_spent(const World& w);

/// State invariants: exclusivity, deadlock, stuck-disable, and (at full
/// termination) serialization completeness.  Returns the violated
/// invariant name or nullptr.
const char* check_state(const World& w, const CheckConfig& cfg,
                        std::string& detail);

/// Quiescent read-agreement probe: on a clone of a quiescent state, issue
/// one read at `client` and deterministically drain every channel.  The
/// read must complete and return the latest serialized write.  Returns
/// the violated invariant name or nullptr.
const char* probe_read(const World& quiescent, NodeId client,
                       const CheckConfig& cfg, std::string& detail);

/// True iff delivering the head of channel src->dst is a *pure
/// absorption*: a dry run on a clone of dst's machine fires no context
/// callback and leaves the machine's exact state bytes unchanged.  Such a
/// delivery is invisible to every invariant and commutes with every other
/// enabled transition, so the search may expand it alone.
bool pure_absorption(const World& w, NodeId src, NodeId dst);

}  // namespace drsm::check
