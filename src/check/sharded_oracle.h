// ShardedOracle: the coherence oracle as a live referee for the sharded
// concurrent runtime.
//
// Objects are disjoint across shards and each shard's event loop is a
// single thread, so sequential-consistency checking decomposes perfectly:
// one CoherenceOracle per shard, each touched only by its shard's thread
// (thread safety by confinement, no locks on the hot path).  finish() and
// the aggregate accessors are for after the runtime has stopped — they
// read all per-shard oracles from the caller's thread, which is safe once
// the shard threads have joined.
//
// The per-shard oracles run in kSequential mode: inside a shard every
// operation executes atomically per object, so every read must return the
// latest serialized write of its object — the strictest check the repo
// has, applied to a multi-million-ops/sec concurrent run.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "check/oracle.h"

namespace drsm::check {

class ShardedOracle {
 public:
  explicit ShardedOracle(std::size_t num_shards,
                         OracleMode mode = OracleMode::kSequential);

  /// The tap to attach to shard `shard` (confined to that shard's thread).
  sim::CoherenceTap* tap(std::size_t shard);

  std::size_t num_shards() const { return oracles_.size(); }

  /// Post-join: per-object version-sequence contiguity on every shard.
  void finish();

  bool ok() const;
  /// All shards' violations, prefixed with the shard index.
  std::vector<std::string> violations() const;

  std::size_t commits() const;
  std::size_t issues() const;
  std::size_t reads() const;

  const CoherenceOracle& shard_oracle(std::size_t shard) const {
    return *oracles_[shard];
  }

 private:
  std::vector<std::unique_ptr<CoherenceOracle>> oracles_;
};

}  // namespace drsm::check
