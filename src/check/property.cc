#include "check/property.h"

#include <algorithm>

#include "sim/event_sim.h"
#include "sim/sequential.h"
#include "support/rng.h"
#include "workload/generator.h"
#include "workload/spec.h"

namespace drsm::check {
namespace {

/// Seed-derived workload shape: one of the paper's three deviation
/// families with random parameters, always leaving every client some
/// chance to act when the family allows it.
workload::WorkloadSpec pick_spec(Rng& rng, std::size_t num_clients) {
  const double p = 0.1 + 0.5 * rng.uniform();
  const std::size_t a = num_clients > 1 ? num_clients - 1 : 0;
  switch (rng.uniform_index(3)) {
    case 0: {
      const double sigma =
          a == 0 ? 0.0
                 : rng.uniform() * 0.9 * (1.0 - p) / static_cast<double>(a);
      return workload::read_disturbance(p, sigma, a);
    }
    case 1: {
      const double xi =
          a == 0 ? 0.0
                 : rng.uniform() * 0.9 * (1.0 - p) / static_cast<double>(a);
      return workload::write_disturbance(p, xi, a);
    }
    default:
      return workload::multiple_activity_centers(
          p, 1 + rng.uniform_index(num_clients));
  }
}

PropertyResult harvest(const CoherenceOracle& oracle) {
  PropertyResult result;
  result.violations = oracle.violations();
  result.reads = oracle.reads();
  result.commits = oracle.commits();
  result.issues = oracle.issues();
  return result;
}

}  // namespace

PropertyResult run_simulator_property(const PropertyConfig& config) {
  Rng rng(config.seed);
  const workload::WorkloadSpec spec = pick_spec(rng, config.num_clients);

  sim::SystemConfig system;
  system.num_clients = config.num_clients;

  sim::SimOptions options;
  options.seed = rng.next();
  options.max_ops = config.ops;
  options.warmup_ops = 0;
  options.latency.min_latency = 1;
  options.latency.max_latency = 1 + rng.uniform_index(8);
  options.latency.processing_time = rng.uniform_index(3);

  workload::ConcurrentDriver driver(spec, rng.next(), /*num_objects=*/1,
                                    /*mean_think_time=*/
                                    2.0 + 62.0 * rng.uniform());

  sim::EventSimulator simulator(config.protocol, system, options);
  CoherenceOracle oracle(OracleMode::kConcurrent);
  simulator.set_coherence_tap(&oracle);
  simulator.run(driver);
  oracle.finish();
  return harvest(oracle);
}

PropertyResult run_sequential_property(const PropertyConfig& config) {
  Rng rng(config.seed);
  const workload::WorkloadSpec spec = pick_spec(rng, config.num_clients);

  sim::SystemConfig system;
  system.num_clients = config.num_clients;

  workload::GlobalSequenceGenerator generator(spec, rng.next());
  sim::SequentialRuntime runtime(config.protocol, system, spec.roster());
  CoherenceOracle oracle(OracleMode::kSequential);
  runtime.set_coherence_tap(&oracle);

  std::uint64_t value_counter = 0;
  for (std::size_t i = 0; i < config.ops; ++i) {
    const workload::TraceEntry entry = generator.next();
    const std::uint64_t value =
        entry.op == fsm::OpKind::kWrite ? ++value_counter : 0;
    runtime.execute(entry.node, entry.op, value);
  }
  oracle.finish();
  return harvest(oracle);
}

}  // namespace drsm::check
