#include "dsm/migration.h"

#include <utility>

#include "protocols/detail.h"
#include "support/error.h"

namespace drsm::dsm {
namespace {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

namespace pdetail = protocols::detail;

/// Control tokens ride the reserved object id 1; the migrated data object
/// is 0.  The types are reused from the existing MsgType set (the dense
/// per-type arrays must not grow), disambiguated by object id + direction:
///   DRAIN        kRecallInval  home -> clients
///   DRAIN-ACK    kFlushClean   client -> home
///   FENCE-START  kSyncReq      home -> clients (and home -> home)
///   FENCE-TOKEN  kSyncReq      client -> peer clients
///   FENCE-DONE   kSyncAck      client -> home
///   SWITCH       kOwnerXfer    home -> clients
///   SWITCH-ACK   kAck          client -> home
///   RELEASE      kSyncAck      home -> clients
/// None of them is kInval/kUpdate, so the POR dry run never touches the
/// control plane.
constexpr ObjectId kCtrlObject = 1;

enum class Phase : std::uint8_t {
  kOld,        // both: pre-migration, inner machine is the old protocol
  kDraining,   // home: awaiting DRAIN-ACKs; client: finishing local op
  kDrained,    // client only: acked, queue held, old inner still live
  kFencing,    // home only: awaiting FENCE-DONEs + self-token
  kFlushing,   // home only: synthetic read in flight through the old inner
  kSwitching,  // home only: new inner live, awaiting SWITCH-ACKs
  kSeeding,    // home only: synthetic re-commit through the new inner
  kSwitched,   // client only: new inner live, awaiting RELEASE
  kDone,       // both: handoff complete, inner machine is the new protocol
};

enum class Synthetic : std::uint8_t { kNone, kFlushRead, kSeedWrite };

Message ctrl(MsgType type, NodeId initiator) {
  Message msg;
  msg.token.type = type;
  msg.token.initiator = initiator;
  msg.token.object = kCtrlObject;
  msg.token.queue = QueueKind::kDistributed;
  msg.token.params = ParamPresence::kNone;
  return msg;
}

Message synthetic_request(OpKind op, NodeId node, std::uint64_t value) {
  Message msg;
  msg.token.type =
      op == OpKind::kRead ? MsgType::kReadReq : MsgType::kWriteReq;
  msg.token.initiator = node;
  msg.token.object = 0;
  msg.token.queue = QueueKind::kLocal;
  msg.token.params = op == OpKind::kWrite ? ParamPresence::kWriteParams
                                          : ParamPresence::kReadParams;
  msg.value = value;
  msg.sender = node;
  return msg;
}

class MigrationMachine final : public fsm::ProtocolMachine {
 public:
  MigrationMachine(const MigrationWorldOptions& opts, NodeId node)
      : opts_(opts),
        node_(node),
        is_home_(node == static_cast<NodeId>(opts.num_clients)),
        inner_(protocols::make_machine(opts.from, node, opts.num_clients)) {}

  void on_message(fsm::MachineContext& ctx, const Message& msg) override {
    if (msg.token.object == kCtrlObject) {
      if (is_home_)
        home_control(ctx, msg);
      else
        client_control(ctx, msg);
    } else {
      deliver_to_inner(ctx, msg);
      if (is_home_ && phase_ == Phase::kOld) {
        if (deliveries_ < opts_.trigger) ++deliveries_;
        if (deliveries_ >= opts_.trigger) begin_drain(ctx);
      }
    }
    post_dispatch(ctx);
  }

  std::unique_ptr<ProtocolMachine> clone() const override {
    auto copy = std::make_unique<MigrationMachine>(opts_, node_);
    copy->phase_ = phase_;
    copy->epoch_ = epoch_;
    copy->inner_ = inner_->clone();
    copy->op_pending_ = op_pending_;
    copy->inner_disabled_ = inner_disabled_;
    copy->out_disabled_ = out_disabled_;
    copy->hold_ = hold_;
    copy->deliveries_ = deliveries_;
    copy->drain_acks_ = drain_acks_;
    copy->fence_dones_ = fence_dones_;
    copy->switch_acks_ = switch_acks_;
    copy->tokens_seen_ = tokens_seen_;
    copy->fence_start_seen_ = fence_start_seen_;
    copy->self_token_seen_ = self_token_seen_;
    copy->synthetic_ = synthetic_;
    copy->snoop_value_ = snoop_value_;
    copy->snoop_version_ = snoop_version_;
    return copy;
  }

  void encode(std::vector<std::uint8_t>& out) const override {
    encode_full(out);
  }

  /// Behaviour key.  The ack/token bitsets are emitted as *counts*: which
  /// clients have acked is fully determined by the rest of the global
  /// state (a client wrapper's phase says whether it acked, the channels
  /// show acks in flight), so the count is behaviourally sufficient — and
  /// being permutation-invariant it lets symmetry merge states the bitset
  /// would keep apart.  The exact bitsets live in encode_state.  The snoop
  /// pair is data and stays out, except the one bit that selects the
  /// seed-vs-skip branch.
  void encode_full(std::vector<std::uint8_t>& out) const override {
    encode_wrapper(out);
    inner_->encode_full(out);
  }

  bool encode_relabeled(std::vector<std::uint8_t>& out, const NodeId* map,
                        std::size_t num_clients) const override {
    encode_wrapper(out);  // counts are already permutation-invariant
    return inner_->encode_relabeled(out, map, num_clients);
  }

  void encode_state(std::vector<std::uint8_t>& out) const override {
    out.push_back(static_cast<std::uint8_t>(phase_));
    out.push_back(epoch_);
    out.push_back(pack_flags());
    out.push_back(static_cast<std::uint8_t>(synthetic_));
    out.push_back(deliveries_);
    pdetail::put_u32(out, drain_acks_);
    pdetail::put_u32(out, fence_dones_);
    pdetail::put_u32(out, switch_acks_);
    pdetail::put_u32(out, tokens_seen_);
    pdetail::put_u64(out, snoop_value_);
    pdetail::put_u64(out, snoop_version_);
    inner_->encode_state(out);
  }

  bool decode_state(const std::uint8_t*& p, const std::uint8_t* end) override {
    phase_ = static_cast<Phase>(pdetail::take_u8(p, end));
    epoch_ = pdetail::take_u8(p, end);
    const std::uint8_t flags = pdetail::take_u8(p, end);
    op_pending_ = (flags & 1u) != 0;
    inner_disabled_ = (flags & 2u) != 0;
    out_disabled_ = (flags & 4u) != 0;
    hold_ = (flags & 8u) != 0;
    fence_start_seen_ = (flags & 16u) != 0;
    self_token_seen_ = (flags & 32u) != 0;
    synthetic_ = static_cast<Synthetic>(pdetail::take_u8(p, end));
    deliveries_ = pdetail::take_u8(p, end);
    drain_acks_ = pdetail::take_u32(p, end);
    fence_dones_ = pdetail::take_u32(p, end);
    switch_acks_ = pdetail::take_u32(p, end);
    tokens_seen_ = pdetail::take_u32(p, end);
    snoop_value_ = pdetail::take_u64(p, end);
    snoop_version_ = pdetail::take_u64(p, end);
    inner_ = protocols::make_machine(epoch_ != 0 ? opts_.to : opts_.from,
                                     node_, opts_.num_clients);
    return inner_->decode_state(p, end);
  }

  bool quiescent() const override {
    return (phase_ == Phase::kOld || phase_ == Phase::kDone) &&
           !op_pending_ && synthetic_ == Synthetic::kNone &&
           inner_->quiescent();
  }

  const char* state_name() const override {
    switch (phase_) {
      case Phase::kOld:
      case Phase::kDone:
        return inner_->state_name();
      case Phase::kDraining: return "MIG-DRAINING";
      case Phase::kDrained: return "MIG-DRAINED";
      case Phase::kFencing: return "MIG-FENCING";
      case Phase::kFlushing: return "MIG-FLUSHING";
      case Phase::kSwitching: return "MIG-SWITCHING";
      case Phase::kSeeding: return "MIG-SEEDING";
      case Phase::kSwitched: return "MIG-SWITCHED";
    }
    DRSM_CHECK(false, "unreachable");
    return "";
  }

 private:
  /// Context handed to the inner machine: protocol traffic passes through
  /// untouched; completions clear the wrapper's op bookkeeping (and
  /// capture the synthetic flush/seed results at the home); queue toggles
  /// are reconciled with the migration hold.  The wrapper never swaps
  /// inner_ while inner code is on the stack — captures only set flags
  /// here, and post_dispatch acts on them after on_message returns.
  class InnerCtx final : public fsm::MachineContext {
   public:
    InnerCtx(MigrationMachine& m, fsm::MachineContext& out)
        : m_(m), out_(out) {}

    NodeId self() const override { return out_.self(); }
    std::size_t num_clients() const override { return out_.num_clients(); }
    const fsm::CostModel& costs() const override { return out_.costs(); }
    void send(NodeId dest, Message msg) override {
      out_.send(dest, std::move(msg));
    }
    void send_except(std::initializer_list<NodeId> excluded,
                     Message msg) override {
      out_.send_except(excluded, std::move(msg));
    }
    void return_read(std::uint64_t value, std::uint64_t version) override {
      if (m_.is_home_ && m_.synthetic_ == Synthetic::kFlushRead) {
        m_.snoop_value_ = value;
        m_.snoop_version_ = version;
        m_.synthetic_ = Synthetic::kNone;
        m_.flush_captured_ = true;
      }
      // Forward even for the synthetic read: at the home the world/oracle
      // side only validates the (value, version) pair against the commit
      // log — a free serialized-read check on the flush itself.
      out_.return_read(value, version);
      if (!m_.is_home_) m_.op_pending_ = false;
    }
    void complete_write(std::uint64_t version) override {
      if (m_.is_home_ && m_.synthetic_ == Synthetic::kSeedWrite) {
        m_.synthetic_ = Synthetic::kNone;
        m_.seed_done_ = true;
      }
      out_.complete_write(version);
      if (!m_.is_home_) m_.op_pending_ = false;
    }
    void complete_op() override {
      out_.complete_op();
      if (!m_.is_home_) m_.op_pending_ = false;
    }
    void disable_local_queue() override {
      m_.inner_disabled_ = true;
      m_.sync_disable(out_);
    }
    void enable_local_queue() override {
      m_.inner_disabled_ = false;
      m_.sync_disable(out_);
    }
    std::uint64_t next_version() override { return out_.next_version(); }
    void commit_write(std::uint64_t version, std::uint64_t value) override {
      out_.commit_write(version, value);
    }

   private:
    MigrationMachine& m_;
    fsm::MachineContext& out_;
  };
  friend class InnerCtx;

  std::uint32_t bit(NodeId node) const { return 1u << node; }
  std::uint32_t all_clients() const {
    return (1u << opts_.num_clients) - 1u;
  }

  /// The world's disabled flag is a single bit, so the wrapper owns it
  /// exclusively and reconciles the two reasons to hold the queue (the
  /// inner protocol's own disable, the migration hold) into one idempotent
  /// toggle stream.
  void sync_disable(fsm::MachineContext& out) {
    const bool want = inner_disabled_ || hold_;
    if (want == out_disabled_) return;
    out_disabled_ = want;
    if (want)
      out.disable_local_queue();
    else
      out.enable_local_queue();
  }

  void deliver_to_inner(fsm::MachineContext& ctx, const Message& msg) {
    if (!is_home_ && msg.token.queue == QueueKind::kLocal) {
      DRSM_CHECK(!hold_,
                 "migration: local request delivered while the queue is "
                 "held");
      op_pending_ = true;
    }
    InnerCtx ictx(*this, ctx);
    inner_->on_message(ictx, msg);
  }

  /// Deferred phase advances: anything that must not run while the inner
  /// machine is on the stack (swaps, synthetic injections) is triggered
  /// here, after the dispatch that set the flag returned.
  void post_dispatch(fsm::MachineContext& ctx) {
    if (is_home_) {
      if (flush_captured_) {
        flush_captured_ = false;
        do_switch(ctx);
      }
      if (seed_done_) {
        seed_done_ = false;
        finish(ctx);
      }
    } else if (phase_ == Phase::kDraining && !op_pending_) {
      phase_ = Phase::kDrained;
      ctx.send(ctx.home(), ctrl(MsgType::kFlushClean, node_));
    }
  }

  // -- home side ----------------------------------------------------------

  void begin_drain(fsm::MachineContext& ctx) {
    phase_ = Phase::kDraining;
    for (NodeId c = 0; c < static_cast<NodeId>(opts_.num_clients); ++c)
      ctx.send(c, ctrl(MsgType::kRecallInval, node_));
  }

  void begin_fence(fsm::MachineContext& ctx) {
    phase_ = Phase::kFencing;
    if (opts_.fault == MigrationWorldOptions::Fault::kSkipFence) {
      begin_flush(ctx);
      return;
    }
    for (NodeId c = 0; c < static_cast<NodeId>(opts_.num_clients); ++c)
      ctx.send(c, ctrl(MsgType::kSyncReq, node_));
    ctx.send(node_, ctrl(MsgType::kSyncReq, node_));  // flush home->home
  }

  void begin_flush(fsm::MachineContext& ctx) {
    phase_ = Phase::kFlushing;
    synthetic_ = Synthetic::kFlushRead;
    InnerCtx ictx(*this, ctx);
    inner_->on_message(ictx, synthetic_request(OpKind::kRead, node_, 0));
    // A local hit captures synchronously (flush_captured_), handled by
    // post_dispatch; a recall/forward chain captures on a later delivery.
  }

  void do_switch(fsm::MachineContext& ctx) {
    phase_ = Phase::kSwitching;
    epoch_ = 1;
    inner_ = protocols::make_machine(opts_.to, node_, opts_.num_clients);
    inner_disabled_ = false;  // the flush read completed, so the old inner
    sync_disable(ctx);        // re-enabled; fresh machines start enabled
    for (NodeId c = 0; c < static_cast<NodeId>(opts_.num_clients); ++c)
      ctx.send(c, ctrl(MsgType::kOwnerXfer, node_));
  }

  void begin_seed(fsm::MachineContext& ctx) {
    if (snoop_version_ == 0 ||
        opts_.fault == MigrationWorldOptions::Fault::kNoSeed) {
      finish(ctx);  // nothing was ever written (or the injected bug)
      return;
    }
    phase_ = Phase::kSeeding;
    synthetic_ = Synthetic::kSeedWrite;
    InnerCtx ictx(*this, ctx);
    inner_->on_message(
        ictx, synthetic_request(OpKind::kWrite, node_, snoop_value_));
    // seed_done_ fires synchronously for local-apply home machines, or on
    // the delivery that completes the write; post_dispatch finishes.
  }

  void finish(fsm::MachineContext& ctx) {
    phase_ = Phase::kDone;
    for (NodeId c = 0; c < static_cast<NodeId>(opts_.num_clients); ++c)
      ctx.send(c, ctrl(MsgType::kSyncAck, node_));
  }

  void home_control(fsm::MachineContext& ctx, const Message& msg) {
    const NodeId from = msg.token.initiator;
    switch (msg.token.type) {
      case MsgType::kFlushClean:  // DRAIN-ACK
        DRSM_CHECK(phase_ == Phase::kDraining &&
                       from < opts_.num_clients &&
                       (drain_acks_ & bit(from)) == 0,
                   "migration: unexpected DRAIN-ACK");
        drain_acks_ |= bit(from);
        if (drain_acks_ == all_clients()) begin_fence(ctx);
        break;
      case MsgType::kSyncReq:  // the home's own fence token
        DRSM_CHECK(phase_ == Phase::kFencing && from == node_ &&
                       !self_token_seen_,
                   "migration: unexpected fence self-token");
        self_token_seen_ = true;
        maybe_flush(ctx);
        break;
      case MsgType::kSyncAck:  // FENCE-DONE
        DRSM_CHECK(phase_ == Phase::kFencing &&
                       from < opts_.num_clients &&
                       (fence_dones_ & bit(from)) == 0,
                   "migration: unexpected FENCE-DONE");
        fence_dones_ |= bit(from);
        maybe_flush(ctx);
        break;
      case MsgType::kAck:  // SWITCH-ACK
        DRSM_CHECK(phase_ == Phase::kSwitching &&
                       from < opts_.num_clients &&
                       (switch_acks_ & bit(from)) == 0,
                   "migration: unexpected SWITCH-ACK");
        switch_acks_ |= bit(from);
        if (switch_acks_ == all_clients()) begin_seed(ctx);
        break;
      default:
        DRSM_CHECK(false, "migration: unknown control message at home");
    }
  }

  void maybe_flush(fsm::MachineContext& ctx) {
    if (self_token_seen_ && fence_dones_ == all_clients()) begin_flush(ctx);
  }

  // -- client side --------------------------------------------------------

  void client_control(fsm::MachineContext& ctx, const Message& msg) {
    const NodeId from = msg.token.initiator;
    switch (msg.token.type) {
      case MsgType::kRecallInval:  // DRAIN
        DRSM_CHECK(phase_ == Phase::kOld && from == ctx.home(),
                   "migration: unexpected DRAIN");
        phase_ = Phase::kDraining;
        hold_ = true;
        sync_disable(ctx);
        break;  // post_dispatch acks once the local op (if any) completes
      case MsgType::kSyncReq:
        if (from == ctx.home()) {  // FENCE-START
          DRSM_CHECK(phase_ == Phase::kDrained && !fence_start_seen_,
                     "migration: unexpected FENCE-START");
          fence_start_seen_ = true;
          for (NodeId c = 0; c < static_cast<NodeId>(opts_.num_clients);
               ++c)
            if (c != node_) ctx.send(c, ctrl(MsgType::kSyncReq, node_));
          maybe_fence_done(ctx);
        } else {  // FENCE-TOKEN from a peer
          DRSM_CHECK(phase_ == Phase::kDrained &&
                         from < opts_.num_clients &&
                         (tokens_seen_ & bit(from)) == 0,
                     "migration: unexpected FENCE-TOKEN");
          tokens_seen_ |= bit(from);
          maybe_fence_done(ctx);
        }
        break;
      case MsgType::kOwnerXfer:  // SWITCH
        DRSM_CHECK(phase_ == Phase::kDrained && from == ctx.home(),
                   "migration: unexpected SWITCH");
        phase_ = Phase::kSwitched;
        epoch_ = 1;
        inner_ = protocols::make_machine(opts_.to, node_, opts_.num_clients);
        inner_disabled_ = false;
        sync_disable(ctx);  // hold_ still set: the queue stays disabled
        ctx.send(ctx.home(), ctrl(MsgType::kAck, node_));
        break;
      case MsgType::kSyncAck:  // RELEASE
        DRSM_CHECK(phase_ == Phase::kSwitched && from == ctx.home(),
                   "migration: unexpected RELEASE");
        phase_ = Phase::kDone;
        hold_ = false;
        sync_disable(ctx);
        break;
      default:
        DRSM_CHECK(false, "migration: unknown control message at client");
    }
  }

  void maybe_fence_done(fsm::MachineContext& ctx) {
    const std::uint32_t peers = all_clients() & ~bit(node_);
    if (fence_start_seen_ && (tokens_seen_ & peers) == peers)
      ctx.send(ctx.home(), ctrl(MsgType::kSyncAck, node_));
    // Fires exactly once: FENCE-START and each token arrive once
    // (asserted above), and the condition is monotone.
  }

  // -- encodings ----------------------------------------------------------

  std::uint8_t pack_flags() const {
    return static_cast<std::uint8_t>(
        (op_pending_ ? 1u : 0u) | (inner_disabled_ ? 2u : 0u) |
        (out_disabled_ ? 4u : 0u) | (hold_ ? 8u : 0u) |
        (fence_start_seen_ ? 16u : 0u) | (self_token_seen_ ? 32u : 0u));
  }

  void encode_wrapper(std::vector<std::uint8_t>& out) const {
    out.push_back(static_cast<std::uint8_t>(phase_));
    out.push_back(epoch_);
    out.push_back(pack_flags());
    out.push_back(static_cast<std::uint8_t>(synthetic_));
    out.push_back(deliveries_);
    out.push_back(static_cast<std::uint8_t>(popcount(drain_acks_)));
    out.push_back(static_cast<std::uint8_t>(popcount(fence_dones_)));
    out.push_back(static_cast<std::uint8_t>(popcount(switch_acks_)));
    out.push_back(static_cast<std::uint8_t>(popcount(tokens_seen_)));
    out.push_back(snoop_version_ > 0 ? 1 : 0);  // selects seed vs skip
  }

  static int popcount(std::uint32_t v) {
    int n = 0;
    for (; v != 0; v &= v - 1) ++n;
    return n;
  }

  const MigrationWorldOptions opts_;
  const NodeId node_;
  const bool is_home_;

  Phase phase_ = Phase::kOld;
  std::uint8_t epoch_ = 0;  // 0 = opts_.from, 1 = opts_.to
  std::unique_ptr<fsm::ProtocolMachine> inner_;
  bool op_pending_ = false;      // client: a local app op is in flight
  bool inner_disabled_ = false;  // the inner machine's own queue disable
  bool out_disabled_ = false;    // mirror of the runtime's disabled flag
  bool hold_ = false;            // client: queue held by the migration
  std::uint8_t deliveries_ = 0;  // home: data deliveries, frozen at trigger
  std::uint32_t drain_acks_ = 0;    // home: DRAIN-ACK bitset
  std::uint32_t fence_dones_ = 0;   // home: FENCE-DONE bitset
  std::uint32_t switch_acks_ = 0;   // home: SWITCH-ACK bitset
  std::uint32_t tokens_seen_ = 0;   // client: peer FENCE-TOKEN bitset
  bool fence_start_seen_ = false;   // client
  bool self_token_seen_ = false;    // home
  Synthetic synthetic_ = Synthetic::kNone;
  bool flush_captured_ = false;  // transient within one on_message
  bool seed_done_ = false;       // transient within one on_message
  std::uint64_t snoop_value_ = 0;    // flushed authoritative data
  std::uint64_t snoop_version_ = 0;
};

}  // namespace

std::unique_ptr<fsm::ProtocolMachine> make_migration_machine(
    const MigrationWorldOptions& options, NodeId node) {
  DRSM_CHECK(options.num_clients >= 1 && options.num_clients <= 8,
             "migration: 1..8 clients (ack bitsets and checker budgets)");
  DRSM_CHECK(options.trigger >= 1 && options.trigger <= 255,
             "migration: trigger must be 1..255");
  DRSM_CHECK(node <= options.num_clients,
             "migration: node out of range");
  return std::make_unique<MigrationMachine>(options, node);
}

check::CheckConfig migration_check_config(
    const MigrationWorldOptions& options) {
  check::CheckConfig cfg;
  cfg.num_clients = options.num_clients;
  cfg.machine_factory = [options](NodeId node) {
    return make_migration_machine(options, node);
  };
  cfg.trust_factory_encodings = true;
  cfg.check_exclusivity = false;  // state names mix two protocols + MIG-*
  using PK = protocols::ProtocolKind;
  cfg.protocol = (options.from == PK::kDragon || options.to == PK::kDragon)
                     ? PK::kDragon
                     : options.from;
  return cfg;
}

}  // namespace drsm::dsm
