#include "dsm/memory_pool.h"

#include <cstring>

#include "support/error.h"

namespace drsm::dsm {

CapacityManagedMemory::CapacityManagedMemory(const Options& options)
    : options_(options),
      memory_(options.memory),
      pools_(options.memory.num_clients) {
  DRSM_CHECK(protocols::supports(options_.memory.protocol,
                                 fsm::OpKind::kEject),
             "capacity management needs a protocol with an eject operation");
  if (options_.replicas_per_client > 0)
    DRSM_CHECK(options_.replicas_per_client >= 1,
               "need room for at least one replica");
}

std::uint64_t CapacityManagedMemory::read(NodeId node, ObjectId object) {
  const std::uint64_t value = memory_.read(node, object);
  touch(node, object);
  return value;
}

void CapacityManagedMemory::write(NodeId node, ObjectId object,
                                  std::uint64_t value) {
  memory_.write(node, object, value);
  touch(node, object);
}

void CapacityManagedMemory::touch(NodeId node, ObjectId object) {
  if (node >= pools_.size()) return;  // the sequencer holds the masters
  Pool& pool = pools_[node];

  // Residency follows the replica's actual state: a WT write leaves the
  // writer INVALID, a WTV write leaves it VALID, and remote writes may
  // have invalidated entries we still track — prune those for free.
  const bool valid =
      std::strcmp(memory_.state_name(node, object), "VALID") == 0;

  if (auto it = pool.index.find(object); it != pool.index.end()) {
    pool.lru.erase(it->second);
    pool.index.erase(it);
  }
  if (!valid) return;

  pool.lru.push_front(object);
  pool.index[object] = pool.lru.begin();

  if (options_.replicas_per_client == 0) return;
  while (pool.index.size() > options_.replicas_per_client) {
    // Evict from the cold end, skipping entries another node's write
    // already invalidated (dropping those costs nothing).
    const ObjectId victim = pool.lru.back();
    pool.lru.pop_back();
    pool.index.erase(victim);
    if (std::strcmp(memory_.state_name(node, victim), "VALID") == 0) {
      memory_.eject(node, victim);
      ++pool.evictions;
    }
  }
}

std::size_t CapacityManagedMemory::evictions(NodeId node) const {
  DRSM_CHECK(node < pools_.size(), "evictions: node out of range");
  return pools_[node].evictions;
}

std::size_t CapacityManagedMemory::total_evictions() const {
  std::size_t total = 0;
  for (const Pool& pool : pools_) total += pool.evictions;
  return total;
}

std::size_t CapacityManagedMemory::resident(NodeId node) const {
  DRSM_CHECK(node < pools_.size(), "resident: node out of range");
  return pools_[node].index.size();
}

}  // namespace drsm::dsm
