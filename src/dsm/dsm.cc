#include "dsm/dsm.h"

#include "support/error.h"

namespace drsm::dsm {

namespace {

std::vector<NodeId> full_roster(std::size_t num_clients) {
  std::vector<NodeId> roster(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i)
    roster[i] = static_cast<NodeId>(i);
  return roster;
}

sim::SystemConfig to_sim_config(const SharedMemory::Options& options) {
  sim::SystemConfig config;
  config.num_clients = options.num_clients;
  config.costs = options.costs;
  config.num_objects = 1;  // each runtime hosts one object
  return config;
}

}  // namespace

SharedMemory::SharedMemory(const Options& options) : options_(options) {
  DRSM_CHECK(options_.num_clients >= 1, "need at least one client");
  DRSM_CHECK(options_.num_objects >= 1, "need at least one object");
  objects_.reserve(options_.num_objects);
  for (std::size_t j = 0; j < options_.num_objects; ++j)
    objects_.emplace_back(options_.protocol, to_sim_config(options_),
                          full_roster(options_.num_clients));
  object_protocol_.assign(options_.num_objects, options_.protocol);
  last_value_.resize(options_.num_objects);
  object_cost_.assign(options_.num_objects, 0.0);
}

void SharedMemory::check_ids(NodeId node, ObjectId object) const {
  DRSM_CHECK(node <= options_.num_clients, "node index out of range");
  DRSM_CHECK(object < options_.num_objects, "object index out of range");
}

Cost SharedMemory::charge(ObjectId object, const sim::OpResult& result) {
  object_cost_[object] += result.cost;
  total_cost_ += result.cost;
  last_op_cost_ = result.cost;
  ++total_ops_;
  return result.cost;
}

std::uint64_t SharedMemory::read(NodeId node, ObjectId object) {
  check_ids(node, object);
  const sim::OpResult result =
      objects_[object].execute(node, fsm::OpKind::kRead);
  charge(object, result);
  return result.read_value;
}

void SharedMemory::write(NodeId node, ObjectId object, std::uint64_t value) {
  check_ids(node, object);
  charge(object, objects_[object].execute(node, fsm::OpKind::kWrite, value));
  last_value_[object] = value;
}

void SharedMemory::eject(NodeId node, ObjectId object) {
  check_ids(node, object);
  DRSM_CHECK(node < options_.num_clients,
             "eject is a client operation (the sequencer keeps the master)");
  charge(object, objects_[object].execute(node, fsm::OpKind::kEject));
}

void SharedMemory::sync(NodeId node, ObjectId object) {
  check_ids(node, object);
  DRSM_CHECK(node < options_.num_clients,
             "sync is a client operation (the sequencer is the order)");
  charge(object, objects_[object].execute(node, fsm::OpKind::kSync));
}

void SharedMemory::switch_protocol(protocols::ProtocolKind protocol) {
  options_.protocol = protocol;
  for (std::size_t j = 0; j < options_.num_objects; ++j)
    switch_protocol(static_cast<ObjectId>(j), protocol);
}

void SharedMemory::switch_protocol(ObjectId object,
                                   protocols::ProtocolKind protocol) {
  DRSM_CHECK(object < options_.num_objects, "object index out of range");
  if (protocol == object_protocol_[object]) return;
  object_protocol_[object] = protocol;
  objects_[object] = sim::SequentialRuntime(
      protocol, to_sim_config(options_), full_roster(options_.num_clients));
  // Warm the new replicas with the preserved value; the migration is not
  // charged to the cost counters.
  if (last_value_[object].has_value()) {
    const NodeId home = static_cast<NodeId>(options_.num_clients);
    objects_[object].execute(home, fsm::OpKind::kWrite,
                             *last_value_[object]);
  }
}

protocols::ProtocolKind SharedMemory::object_protocol(
    ObjectId object) const {
  DRSM_CHECK(object < options_.num_objects, "object index out of range");
  return object_protocol_[object];
}

double SharedMemory::average_cost() const {
  return total_ops_ == 0
             ? 0.0
             : total_cost_ / static_cast<double>(total_ops_);
}

void SharedMemory::reset_counters() {
  total_cost_ = 0.0;
  last_op_cost_ = 0.0;
  total_ops_ = 0;
  object_cost_.assign(options_.num_objects, 0.0);
}

Cost SharedMemory::object_cost(ObjectId object) const {
  DRSM_CHECK(object < options_.num_objects, "object index out of range");
  return object_cost_[object];
}

const char* SharedMemory::state_name(NodeId node, ObjectId object) const {
  check_ids(node, object);
  return objects_[object].state_name(node);
}

}  // namespace drsm::dsm
