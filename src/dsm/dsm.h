// Application-facing distributed shared memory (Section 2's programming
// model): M fully replicated shared objects accessed by read/write (plus
// the eject/sync extensions) from any of N client nodes or the sequencer.
//
// Operations are executed with the sequential (one-operation-at-a-time)
// semantics of the analytic model and every message is accounted, so a
// program written against this API can be compared directly with the
// analytic predictions.  The coherence protocol is chosen per SharedMemory
// instance and can be switched at run time (the hook the paper's
// self-tuning proposal needs).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "protocols/protocol.h"
#include "sim/sequential.h"

namespace drsm::dsm {

class SharedMemory {
 public:
  struct Options {
    protocols::ProtocolKind protocol = protocols::ProtocolKind::kWriteThrough;
    std::size_t num_clients = 3;
    std::size_t num_objects = 1;
    fsm::CostModel costs;
  };

  explicit SharedMemory(const Options& options);

  /// Reads shared object `object` from `node` and returns its value.
  std::uint64_t read(NodeId node, ObjectId object);

  /// Writes `value` to shared object `object` from `node`.
  void write(NodeId node, ObjectId object, std::uint64_t value);

  /// Extension: drops `node`'s replica of `object` (next access misses).
  /// Only supported by protocols with an INVALID client state (see
  /// protocols::supports).
  void eject(NodeId node, ObjectId object);

  /// Extension: synchronization barrier through the sequencer for `node`;
  /// when it returns, all of `node`'s prior operations on `object` have
  /// been sequenced.
  void sync(NodeId node, ObjectId object);

  /// Switches the coherence protocol for every object.  Replicas are
  /// re-initialized with the current object values; the switch itself is
  /// not charged to the communication-cost counters.
  void switch_protocol(protocols::ProtocolKind protocol);

  /// Per-object protocol selection: objects are independent (each has its
  /// own protocol processes), so different objects may run different
  /// protocols — the substrate for workload-aware data placement.
  void switch_protocol(ObjectId object, protocols::ProtocolKind protocol);
  protocols::ProtocolKind object_protocol(ObjectId object) const;

  // -- accounting -----------------------------------------------------------
  Cost total_cost() const { return total_cost_; }
  std::size_t total_ops() const { return total_ops_; }
  double average_cost() const;
  Cost last_op_cost() const { return last_op_cost_; }
  void reset_counters();

  /// Per-object accumulated cost (for locality diagnostics).
  Cost object_cost(ObjectId object) const;

  protocols::ProtocolKind protocol() const { return options_.protocol; }
  const Options& options() const { return options_; }

  /// Copy-state of (node, object), e.g. "VALID" (diagnostics and tests).
  const char* state_name(NodeId node, ObjectId object) const;

 private:
  void check_ids(NodeId node, ObjectId object) const;
  Cost charge(ObjectId object, const sim::OpResult& result);

  Options options_;
  std::vector<sim::SequentialRuntime> objects_;  // one runtime per object
  std::vector<protocols::ProtocolKind> object_protocol_;
  std::vector<std::optional<std::uint64_t>> last_value_;  // per object
  std::vector<Cost> object_cost_;
  Cost total_cost_ = 0.0;
  Cost last_op_cost_ = 0.0;
  std::size_t total_ops_ = 0;
};

}  // namespace drsm::dsm
