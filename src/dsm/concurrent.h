// ConcurrentSharedMemory: the DSM under real client concurrency.
//
// Where dsm::SharedMemory executes one operation at a time on the calling
// thread, this runtime partitions the M shared objects across S sequencer
// shards (sim::SequencerShard), each running a batched event loop on its
// own thread, and lets real client threads issue read/write/eject/sync
// operations through lock-free MPSC rings — multiple operations in flight
// per client, bounded by a per-session window.
//
// Concurrency structure:
//   * one Session per DSM client node; a session is confined to the one
//     thread that uses it (its grant ring's consumer);
//   * submit: session -> shard request ring (lock-free, bounded; a full
//     ring is backpressure — the session pumps its grants and retries);
//   * complete: shard -> session grant ring, one wake per session per
//     drained batch;
//   * ordering: a session's operations on one object complete in issue
//     order (ring FIFO per producer + in-order shard processing); an
//     operation on an object is atomic (the shard runs it to protocol
//     quiescence before the next), so per-object histories are sequential
//     and the coherence oracle referees live runs in kSequential mode.
//
// sync(object) is the barrier the paper's extension defines, and here it
// is also the session-level fence: when the sync grant arrives, every
// earlier operation this session issued on that object has been sequenced
// (they sit earlier in the same ring).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/quantile.h"
#include "protocols/protocol.h"
#include "sim/shard.h"

namespace drsm::dsm {

class ConcurrentSharedMemory {
 public:
  struct Options {
    protocols::ProtocolKind protocol =
        protocols::ProtocolKind::kWriteThrough;
    /// N: DSM client nodes; one session per client, node N is the
    /// (per-shard) sequencer.
    std::size_t num_clients = 4;
    std::size_t num_objects = 64;
    std::size_t num_shards = 4;
    fsm::CostModel costs;

    // -- batching / backpressure knobs (see docs/PERFORMANCE.md) ----------
    /// Per-shard request-ring capacity.  Small rings bound queueing delay
    /// and convert overload into producer backpressure.
    std::size_t ring_capacity = 4096;
    /// K: max requests a shard drains per wakeup.
    std::size_t max_batch = 256;
    /// Empty-ring yield-spins before a shard futex-parks (see
    /// sim::SequencerShard::Options::idle_spins).
    std::size_t idle_spins = 4;
    /// W: per-session operation window (grant rings are sized to hold it).
    std::size_t max_inflight = 1024;
    /// Latency is sampled every k-th operation per session (1 = all).
    std::size_t latency_sample_every = 8;

    /// Live coherence referee: per-shard taps (empty, or one per shard —
    /// e.g. check::ShardedOracle::tap(s)).  Each tap is confined to its
    /// shard's thread.
    std::vector<sim::CoherenceTap*> shard_taps;
    /// Post-stop metrics publication target (runtime.* names).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit ConcurrentSharedMemory(const Options& options);
  ~ConcurrentSharedMemory();

  ConcurrentSharedMemory(const ConcurrentSharedMemory&) = delete;
  ConcurrentSharedMemory& operator=(const ConcurrentSharedMemory&) = delete;

  /// One client's issue/completion endpoint.  Confined to one thread.
  class Session {
   public:
    /// Asynchronous issues; each returns the session-local ticket that
    /// will come back on the grant.  Blocks only when the window is full
    /// (pumping grants while it waits).
    std::uint64_t read(ObjectId object);
    std::uint64_t write(ObjectId object, std::uint64_t value);
    /// write() with a runtime-stamped globally unique value — what the
    /// oracle needs to referee; benches use it to skip value bookkeeping.
    std::uint64_t write_unique(ObjectId object);
    std::uint64_t eject(ObjectId object);
    std::uint64_t sync(ObjectId object);

    /// Drains ready grants; returns how many completed.  Never blocks.
    std::size_t pump();
    /// Blocks until every outstanding operation of this session has
    /// completed, then re-raises any shard failure.
    void drain();

    /// Convenience: read issued + drained; returns the value (also passed
    /// to the grant handler like every other grant).
    std::uint64_t read_sync(ObjectId object);

    /// Observer for completed operations, called from pump() on this
    /// session's thread.  Empty = completions are only counted.
    using GrantHandler = std::function<void(const sim::ShardGrant&)>;
    void set_grant_handler(GrantHandler handler) {
      handler_ = std::move(handler);
    }

    std::size_t in_flight() const { return in_flight_; }
    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }
    Cost cost() const { return cost_; }
    /// Backpressure events: full request ring (submit) / full window.
    std::uint64_t submit_stalls() const { return submit_stalls_; }
    std::uint64_t window_stalls() const { return window_stalls_; }
    const obs::Quantile& latency_ns() const { return latency_ns_; }

   private:
    friend class ConcurrentSharedMemory;
    Session(ConcurrentSharedMemory& owner, NodeId node,
            std::size_t grant_capacity, std::size_t latency_sample_every);

    std::uint64_t submit(fsm::OpKind op, ObjectId object,
                         std::uint64_t value);
    void park();

    ConcurrentSharedMemory& owner_;
    NodeId node_;
    sim::GrantRing grants_;
    sim::EventGate gate_;
    std::size_t latency_sample_every_;
    Session::GrantHandler handler_;
    std::size_t in_flight_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t write_seq_ = 0;
    Cost cost_ = 0.0;
    std::uint64_t submit_stalls_ = 0;
    std::uint64_t window_stalls_ = 0;
    std::uint64_t last_read_value_ = 0;
    obs::Quantile latency_ns_{0.005};
    std::vector<sim::ShardGrant> pump_buf_;
  };

  Session& session(NodeId client);

  /// Live-migrates `object` to `to`: enqueues a migration request on the
  /// owning shard's ring from any thread (typically an
  /// adaptive::OnlineController).  The shard executes it in ring order —
  /// operations already queued ahead of it complete under the old
  /// protocol, later ones under the new — and the object's serialized
  /// history stays contiguous across the switch
  /// (sim::SequentialRuntime::migrate re-seeds the latest write), so an
  /// attached coherence oracle referees straight through the migration.
  /// Spins (yielding) while the ring is full; holds no grants, so the
  /// shard can always drain toward it.
  void migrate(ObjectId object, protocols::ProtocolKind to);

  /// The protocol `object` currently runs.  Only stable after stop() or
  /// while no migration of this object is in flight.
  protocols::ProtocolKind object_protocol(ObjectId object) const;

  /// Stops the shard event loops (sessions must be drained first) and
  /// publishes runtime.* metrics.  Idempotent; the destructor calls it.
  void stop();

  /// True once any shard hit a protocol invariant failure.
  bool failed() const;
  std::string error() const;

  // -- aggregate statistics (stable after stop()) ---------------------------
  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t migrations = 0;  // live protocol switches executed
    Cost cost = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t batches = 0;
    std::uint64_t max_batch = 0;
    std::uint64_t shard_parks = 0;
    std::uint64_t idle_yields = 0;
    std::uint64_t ring_full_stalls = 0;
    std::uint64_t submit_stalls = 0;
    std::uint64_t window_stalls = 0;
    double wall_ms = 0.0;
    obs::Quantile latency_ns{0.005};
    std::vector<std::uint64_t> shard_ops;

    double acc() const {
      return ops == 0 ? 0.0 : cost / static_cast<double>(ops);
    }
    double ops_per_sec() const {
      return wall_ms <= 0.0 ? 0.0 : static_cast<double>(ops) /
                                        (wall_ms / 1000.0);
    }
  };
  Stats stats() const;

  const Options& options() const { return options_; }

  /// Latest write sequence number of `object` (post-stop diagnostics).
  std::uint64_t object_version(ObjectId object) const;

 private:
  friend class Session;

  Options options_;
  std::vector<std::unique_ptr<sim::SequencerShard>> shards_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::chrono::steady_clock::time_point start_;
  double wall_ms_ = 0.0;
  bool stopped_ = false;
};

}  // namespace drsm::dsm
