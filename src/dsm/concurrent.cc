#include "dsm/concurrent.h"

#include <chrono>
#include <thread>

#include "support/error.h"

namespace drsm::dsm {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Session

ConcurrentSharedMemory::Session::Session(ConcurrentSharedMemory& owner,
                                         NodeId node,
                                         std::size_t grant_capacity,
                                         std::size_t latency_sample_every)
    : owner_(owner),
      node_(node),
      grants_(grant_capacity),
      latency_sample_every_(latency_sample_every == 0
                                ? 1
                                : latency_sample_every) {
  pump_buf_.resize(256);
}

std::uint64_t ConcurrentSharedMemory::Session::read(ObjectId object) {
  return submit(fsm::OpKind::kRead, object, 0);
}

std::uint64_t ConcurrentSharedMemory::Session::write(ObjectId object,
                                                     std::uint64_t value) {
  return submit(fsm::OpKind::kWrite, object, value);
}

std::uint64_t ConcurrentSharedMemory::Session::write_unique(ObjectId object) {
  // Globally unique: no two sessions share a node id, no session reuses a
  // sequence number.  High bits carry the node so the oracle can attribute
  // a misdelivered value to its writer.
  const std::uint64_t value =
      (static_cast<std::uint64_t>(node_) + 1) << 44 | ++write_seq_;
  return submit(fsm::OpKind::kWrite, object, value);
}

std::uint64_t ConcurrentSharedMemory::Session::eject(ObjectId object) {
  return submit(fsm::OpKind::kEject, object, 0);
}

std::uint64_t ConcurrentSharedMemory::Session::sync(ObjectId object) {
  return submit(fsm::OpKind::kSync, object, 0);
}

std::uint64_t ConcurrentSharedMemory::Session::read_sync(ObjectId object) {
  submit(fsm::OpKind::kRead, object, 0);
  drain();
  return last_read_value_;
}

std::uint64_t ConcurrentSharedMemory::Session::submit(fsm::OpKind op,
                                                      ObjectId object,
                                                      std::uint64_t value) {
  DRSM_CHECK(object < owner_.options_.num_objects, "object id out of range");
  DRSM_CHECK(protocols::supports(owner_.options_.protocol, op),
             "operation not supported by this protocol");
  // Window backpressure: pump completions; park only when none are ready.
  while (in_flight_ >= owner_.options_.max_inflight) {
    if (pump() == 0) {
      ++window_stalls_;
      park();
    }
  }
  sim::ShardRequest request;
  request.op = op;
  request.node = node_;
  request.object = object;
  request.value = value;
  request.ticket = ++issued_;
  request.issue_ns =
      issued_ % latency_sample_every_ == 0 ? now_ns() : 0;
  request.reply = &grants_;
  request.reply_gate = &gate_;
  sim::SequencerShard& shard =
      *owner_.shards_[sim::shard_of(object, owner_.shards_.size())];
  ++in_flight_;
  // Ring backpressure: keep draining our own grants so the shard always
  // has somewhere to publish completions; never park holding a request.
  while (!shard.try_submit(request)) {
    ++submit_stalls_;
    if (pump() == 0) std::this_thread::yield();
  }
  return request.ticket;
}

std::size_t ConcurrentSharedMemory::Session::pump() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = grants_.pop_batch(pump_buf_.data(),
                                            pump_buf_.size());
    if (n == 0) break;
    const std::uint64_t end_ns =
        latency_sample_every_ > 0 ? now_ns() : 0;
    for (std::size_t i = 0; i < n; ++i) {
      const sim::ShardGrant& grant = pump_buf_[i];
      cost_ += grant.cost;
      if (grant.op == fsm::OpKind::kRead) last_read_value_ = grant.value;
      if (grant.issue_ns != 0 && end_ns > grant.issue_ns)
        latency_ns_.record(static_cast<double>(end_ns - grant.issue_ns));
      if (handler_) handler_(grant);
    }
    completed_ += n;
    in_flight_ -= n;
    total += n;
  }
  return total;
}

void ConcurrentSharedMemory::Session::park() {
  const std::uint32_t ticket = gate_.prepare_wait();
  if (grants_.can_pop()) {
    gate_.cancel_wait();
    return;
  }
  gate_.wait(ticket);
}

void ConcurrentSharedMemory::Session::drain() {
  while (in_flight_ > 0) {
    if (pump() == 0) park();
  }
  if (owner_.failed())
    throw Error("concurrent runtime failed: " + owner_.error());
}

// ---------------------------------------------------------------------------
// ConcurrentSharedMemory

ConcurrentSharedMemory::ConcurrentSharedMemory(const Options& options)
    : options_(options) {
  DRSM_CHECK(options_.num_shards >= 1, "need at least one shard");
  DRSM_CHECK(options_.num_clients >= 1, "need at least one client");
  DRSM_CHECK(options_.num_objects >= options_.num_shards,
             "need at least one object per shard");
  DRSM_CHECK(options_.shard_taps.empty() ||
                 options_.shard_taps.size() == options_.num_shards,
             "shard_taps must be empty or one per shard");
  DRSM_CHECK(options_.max_inflight >= 1, "window must admit one operation");

  std::vector<std::vector<ObjectId>> owned(options_.num_shards);
  for (std::size_t o = 0; o < options_.num_objects; ++o) {
    owned[sim::shard_of(static_cast<ObjectId>(o), options_.num_shards)]
        .push_back(static_cast<ObjectId>(o));
  }
  sim::SystemConfig config;
  config.num_clients = options_.num_clients;
  config.costs = options_.costs;
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    sim::SequencerShard::Options shard_options;
    shard_options.protocol = options_.protocol;
    shard_options.config = config;
    shard_options.objects = std::move(owned[s]);
    shard_options.ring_capacity = options_.ring_capacity;
    shard_options.max_batch = options_.max_batch;
    shard_options.idle_spins = options_.idle_spins;
    shard_options.tap =
        options_.shard_taps.empty() ? nullptr : options_.shard_taps[s];
    shards_.push_back(std::make_unique<sim::SequencerShard>(shard_options));
  }
  sessions_.reserve(options_.num_clients);
  for (std::size_t c = 0; c < options_.num_clients; ++c) {
    sessions_.push_back(std::unique_ptr<Session>(
        new Session(*this, static_cast<NodeId>(c), options_.max_inflight,
                    options_.latency_sample_every)));
  }
  for (auto& shard : shards_) shard->start();
  start_ = std::chrono::steady_clock::now();
}

ConcurrentSharedMemory::~ConcurrentSharedMemory() { stop(); }

ConcurrentSharedMemory::Session& ConcurrentSharedMemory::session(
    NodeId client) {
  DRSM_CHECK(client < sessions_.size(), "client id out of range");
  return *sessions_[client];
}

void ConcurrentSharedMemory::migrate(ObjectId object,
                                     protocols::ProtocolKind to) {
  DRSM_CHECK(object < options_.num_objects, "object id out of range");
  sim::ShardRequest request;
  request.kind = sim::ShardRequest::Kind::kMigrate;
  request.object = object;
  request.migrate_to = to;
  sim::SequencerShard& shard =
      *shards_[sim::shard_of(object, shards_.size())];
  while (!shard.try_submit(request)) std::this_thread::yield();
}

protocols::ProtocolKind ConcurrentSharedMemory::object_protocol(
    ObjectId object) const {
  DRSM_CHECK(object < options_.num_objects, "object id out of range");
  return shards_[sim::shard_of(object, shards_.size())]->object_protocol(
      object);
}

void ConcurrentSharedMemory::stop() {
  if (stopped_) return;
  stopped_ = true;
  wall_ms_ = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  for (auto& shard : shards_) shard->stop();
  if (options_.metrics == nullptr) return;

  const Stats s = stats();
  obs::MetricsRegistry& m = *options_.metrics;
  m.counter("runtime.runs").inc();
  m.counter("runtime.ops").inc(s.ops);
  m.counter("runtime.migrations").inc(s.migrations);
  m.counter("runtime.messages").inc(s.messages);
  m.counter("runtime.batches").inc(s.batches);
  m.counter("runtime.shard_parks").inc(s.shard_parks);
  m.counter("runtime.idle_yields").inc(s.idle_yields);
  m.counter("runtime.ring_full_stalls").inc(s.ring_full_stalls);
  m.counter("runtime.submit_stalls").inc(s.submit_stalls);
  m.counter("runtime.window_stalls").inc(s.window_stalls);
  m.gauge("runtime.cost").add(s.cost);
  m.gauge("runtime.acc").set(s.acc());
  m.gauge("runtime.wall_ms").set(s.wall_ms);
  m.gauge("runtime.ops_per_sec").set(s.ops_per_sec());
  m.gauge("runtime.shards").set(static_cast<double>(shards_.size()));
  m.gauge("runtime.sessions").set(static_cast<double>(sessions_.size()));
  m.gauge("runtime.max_batch").set(static_cast<double>(s.max_batch));
  m.gauge("runtime.latency_p50_ns").set(s.latency_ns.query(0.5));
  m.gauge("runtime.latency_p99_ns").set(s.latency_ns.query(0.99));
  obs::TimeSeries& per_shard = m.series("runtime.shard_ops");
  for (std::size_t i = 0; i < s.shard_ops.size(); ++i)
    per_shard.sample(static_cast<double>(i),
                     static_cast<double>(s.shard_ops[i]));
}

bool ConcurrentSharedMemory::failed() const {
  for (const auto& shard : shards_)
    if (shard->failed()) return true;
  return false;
}

std::string ConcurrentSharedMemory::error() const {
  for (const auto& shard : shards_)
    if (shard->failed()) return shard->error();
  return {};
}

ConcurrentSharedMemory::Stats ConcurrentSharedMemory::stats() const {
  Stats s;
  s.wall_ms = wall_ms_;
  for (const auto& shard : shards_) {
    const sim::SequencerShard::Stats& ss = shard->stats();
    s.ops += ss.ops;
    s.migrations += ss.migrations;
    s.cost += ss.cost;
    s.messages += ss.messages;
    s.batches += ss.batches;
    s.max_batch = std::max(s.max_batch, ss.max_batch);
    s.shard_parks += ss.parks;
    s.idle_yields += ss.idle_yields;
    s.ring_full_stalls += ss.ring_full_stalls;
    s.shard_ops.push_back(ss.ops);
  }
  for (const auto& session : sessions_) {
    s.submit_stalls += session->submit_stalls();
    s.window_stalls += session->window_stalls();
    s.latency_ns.merge(session->latency_ns());
  }
  return s;
}

std::uint64_t ConcurrentSharedMemory::object_version(ObjectId object) const {
  return shards_[sim::shard_of(object, shards_.size())]->object_version(
      object);
}

}  // namespace drsm::dsm
