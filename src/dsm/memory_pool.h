// Free-memory-pool extension (paper conclusion: "We consider its
// modifications in order to include other types of operations (eject
// operation, synchronization operation) and the influence of some
// distributed system parameters, such as the size of the free memory
// pool").
//
// CapacityManagedMemory wraps a SharedMemory and bounds how many *valid*
// replicas each client may hold simultaneously (the free memory pool
// size).  When a client touches an object while its pool is full, the
// least-recently-used replica is ejected (the eject operation drops the
// local copy; the sequencer keeps the master), so the next access to the
// evicted object pays a full miss.  Smaller pools therefore trade memory
// for communication cost — the trade-off this extension quantifies.
//
// The underlying protocol must support eject (the Write-Through family).
#pragma once

#include <list>
#include <unordered_map>
#include <vector>

#include "dsm/dsm.h"

namespace drsm::dsm {

class CapacityManagedMemory {
 public:
  struct Options {
    SharedMemory::Options memory;
    /// Maximum number of simultaneously held replicas per client; 0 means
    /// unbounded (plain full replication).
    std::size_t replicas_per_client = 0;
  };

  explicit CapacityManagedMemory(const Options& options);

  std::uint64_t read(NodeId node, ObjectId object);
  void write(NodeId node, ObjectId object, std::uint64_t value);

  SharedMemory& memory() { return memory_; }
  const SharedMemory& memory() const { return memory_; }

  /// Number of evictions performed at `node` so far.
  std::size_t evictions(NodeId node) const;
  std::size_t total_evictions() const;

  /// Replicas currently resident at `node` (valid local copies tracked by
  /// the pool).
  std::size_t resident(NodeId node) const;

 private:
  // Per-client LRU of resident objects: list front = most recent.
  struct Pool {
    std::list<ObjectId> lru;
    std::unordered_map<ObjectId, std::list<ObjectId>::iterator> index;
    std::size_t evictions = 0;
  };

  void touch(NodeId node, ObjectId object);

  Options options_;
  SharedMemory memory_;
  std::vector<Pool> pools_;  // one per client
};

}  // namespace drsm::dsm
