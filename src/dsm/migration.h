// Live protocol migration: the drain/handoff state machine that moves one
// object from an old replication protocol to a new one while the system
// keeps running, plus the model-checker harness that verifies it.
//
// The migration wrapper (make_migration_machine) is a first-class
// fsm::ProtocolMachine that runs at every node.  It encloses a live
// "inner" machine of the old protocol and drives a six-phase handoff,
// coordinated by control tokens that ride the existing message types on a
// reserved control object id (the data object is 0, control is 1):
//
//             home (sequencer)                      clients
//   kOld       counts data deliveries; at the      forward everything to
//              trigger broadcasts DRAIN            the old inner machine
//   kDraining  collects DRAIN-ACKs                 finish the in-flight
//                                                  local op, disable the
//                                                  local queue, DRAIN-ACK
//   kFencing   broadcasts FENCE-START (+ a         on FENCE-START send a
//              self-token for the home->home       FENCE-TOKEN to every
//              channel); waits for every           peer; after tokens from
//              FENCE-DONE                          all peers, FENCE-DONE
//   kFlushing  issues a synthetic local read
//              through the OLD inner machine —
//              the old protocol's own recall
//              machinery pulls the authoritative
//              (value, version) to the home
//   kSwitching swaps in the NEW home machine and   on SWITCH swap in a
//              broadcasts SWITCH; waits for        fresh NEW machine and
//              every SWITCH-ACK                    SWITCH-ACK (queue still
//                                                  held)
//   kSeeding   re-commits the flushed value with
//              a fresh version through the NEW
//              machine, then broadcasts RELEASE    on RELEASE re-enable
//                                                  the local queue
//
// Soundness hinges on two FIFO-channel facts, both machine-verified by the
// checker rather than trusted (docs/TESTING.md has the full argument):
//  1. every pre-drain message is delivered to an OLD machine — the fence
//     flushes client->client and client->home channels, and on each
//     home->client channel SWITCH follows everything the old home machine
//     ever sent;
//  2. the flush read runs *after* the fence, so every straggling write
//     (e.g. a fire-and-forget W-PER still in flight at drain time) is
//     sequenced by the old home machine before the snapshot is taken —
//     seeding can never resurrect a stale value.
// A message from the wrong epoch reaching a machine surfaces as a
// defined-transition violation; a lost or duplicated write surfaces in the
// serialization invariants and quiescent read probes; a stuck drain
// surfaces as deadlock or stuck-disable.  make_migration_machine's fault
// knobs re-introduce the two classic bugs (no fence, no seed) so the tests
// can demonstrate the checker actually catches them.
#pragma once

#include <cstdint>
#include <memory>

#include "check/model_checker.h"
#include "fsm/mealy.h"
#include "protocols/protocol.h"

namespace drsm::dsm {

/// One migration scenario: every node starts under `from`; after the home
/// node has delivered `trigger` data-plane messages it drives the handoff
/// to `to`.
struct MigrationWorldOptions {
  protocols::ProtocolKind from = protocols::ProtocolKind::kWriteThrough;
  protocols::ProtocolKind to = protocols::ProtocolKind::kBerkeley;
  std::size_t num_clients = 2;

  /// Data messages the home delivers before it starts draining (>= 1).
  /// Higher triggers start the handoff deeper into the workload.
  std::size_t trigger = 1;

  /// Deliberate bugs, for tests that prove the checker bites:
  ///  * kSkipFence — switch right after the drain acks, without flushing
  ///    the channels: a straggling old-protocol message can reach a
  ///    new-protocol machine, or a late write can be sequenced after the
  ///    snapshot was taken.
  ///  * kNoSeed — never re-commit the flushed value under the new
  ///    protocol: the pre-migration history is lost and post-migration
  ///    reads return unserialized initial state.
  enum class Fault : std::uint8_t { kNone, kSkipFence, kNoSeed };
  Fault fault = Fault::kNone;
};

/// The migration wrapper machine for `node` (clients 0..N-1, home N).
/// Implements the full model-checker codec contract (encode_full,
/// encode_relabeled, encode_state/decode_state), so the reduced engine's
/// symmetry + POR apply (CheckConfig::trust_factory_encodings).
std::unique_ptr<fsm::ProtocolMachine> make_migration_machine(
    const MigrationWorldOptions& options, NodeId node);

/// A CheckConfig exploring the migration world exhaustively: wrapper
/// machines via the factory, trusted encodings, exclusivity off (state
/// names mix two protocols plus the MIG-* phases).  The convergence
/// exemption is Dragon's whenever either endpoint is Dragon, since both
/// epochs' reads run under one probe policy.  Budgets and engine knobs
/// keep their CheckConfig defaults; callers adjust as needed.
check::CheckConfig migration_check_config(const MigrationWorldOptions& options);

}  // namespace drsm::dsm
