#include "exec/thread_pool.h"

#include <cstdlib>

#include "support/error.h"

namespace drsm::exec {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("DRSM_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value > 0)
      return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Job::work() {
  for (;;) {
    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      (*body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!error) error = std::current_exception();
    }
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(mu);  // pairs with the waiter
      finished.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = jobs_.front();
      // Stop advertising a fully claimed job; stragglers may still be
      // executing their items, which the owner waits out on job->done.
      if (job->next.load(std::memory_order_relaxed) >= job->n) {
        jobs_.pop_front();
        continue;
      }
    }
    job->work();
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  auto job = std::make_shared<Job>();
  job->n = n;
  job->body = &body;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(job);
    }
    cv_.notify_all();
  }
  job->work();  // the caller participates
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->finished.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->n;
    });
  }
  if (!workers_.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (it->get() == job.get()) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace drsm::exec
