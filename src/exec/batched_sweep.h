// BatchedSweepRunner: grid-at-a-time analytic sweeps.
//
// SweepRunner fans independent scalar cells across threads; for analytic
// sweeps that shape leaves the dominant structure on the table — hundreds
// of grid points share one protocol and one sample-space structure, so
// they share one Markov chain and differ only in their probability
// vectors.  BatchedSweepRunner exploits that: cells are grouped by
// protocol (AccSolver::acc_batch then groups by chain-cache key within
// each protocol), each group's chain is enumerated once, and the group's
// stationary solves run through the SoA kernel in linalg/batch.h — one
// structure traversal for the whole grid instead of one per cell.
//
// Determinism contract (same as SweepRunner's): results are written in
// cell order and each cell's acc is bit-for-bit what a freshly built
// scalar AccSolver::acc computes for that cell, independent of grouping,
// batch order, or thread count.  tests/solver_batch_test.cc enforces
// this; the scalar SweepRunner path remains as the differential
// reference.
#pragma once

#include <vector>

#include "analytic/solver.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace drsm::exec {

/// One analytic sweep cell.
struct AnalyticCell {
  protocols::ProtocolKind kind = protocols::ProtocolKind::kWriteThrough;
  workload::WorkloadSpec spec;
};

class BatchedSweepRunner {
 public:
  struct Options {
    /// Threads for fanning protocol groups (0 = default).  Grouping and
    /// result placement are deterministic at any thread count.
    std::size_t threads = 0;
    /// When non-null: exec.batched_sweeps / exec.batched_cells /
    /// exec.batched_groups are published here after each acc_grid call
    /// (calling thread only).
    obs::MetricsRegistry* metrics = nullptr;
  };

  BatchedSweepRunner() : BatchedSweepRunner(Options{}) {}
  explicit BatchedSweepRunner(Options options);

  /// acc for every cell, in cell order.  Cells are grouped by protocol;
  /// each group goes through solver.acc_batch (one batched stationary
  /// solve per chain shape).  Groups run in parallel on the pool; every
  /// group writes only its own cells' slots.
  std::vector<double> acc_grid(analytic::AccSolver& solver,
                               const std::vector<AnalyticCell>& cells);

  std::size_t threads() const { return pool_.threads(); }

 private:
  Options options_;
  ThreadPool pool_;
};

}  // namespace drsm::exec
