#include "exec/sweep.h"

namespace drsm::exec {

std::uint64_t task_seed(std::uint64_t base, std::size_t index) {
  // Two splitmix64 draws from a state offset by the golden ratio per
  // index: a pure, platform-independent function of (base, index).
  std::uint64_t state =
      base + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1);
  splitmix64(state);
  return splitmix64(state);
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), pool_(options.threads) {}

void SweepRunner::publish(std::size_t tasks) {
  tasks_run_ += tasks;
  if (options_.metrics == nullptr) return;
  options_.metrics->gauge("exec.threads")
      .set(static_cast<double>(pool_.threads()));
  options_.metrics->counter("exec.tasks").inc(tasks);
  options_.metrics->counter("exec.sweeps").inc();
}

}  // namespace drsm::exec
