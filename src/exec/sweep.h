// SweepRunner: deterministic parallel execution of experiment sweeps.
//
// Every experiment in the paper is a sweep — acc over protocols × system
// sizes × workload mixes (Tables 6/7, Figs 5/6) — and every point of such
// a sweep is independent: it builds its own chains, runs its own
// simulator, draws from its own random stream.  SweepRunner fans the
// points of one sweep out across a fixed-size thread pool while keeping
// the results *bit-identical regardless of thread count or schedule*:
//
//  * each task receives a SweepTask carrying its point index and a
//    deterministic seed derived purely from (base_seed, index) — never
//    from which thread runs it or when;
//  * results are collected into a vector indexed by point, so assembly
//    order equals point order;
//  * the contract (documented, and enforced by tests/exec_test.cc) is
//    that a task reads only immutable shared inputs and writes only its
//    own result slot.  Per-task solvers/simulators/RNGs make warm-start
//    and caching state task-local, which is what keeps adjacent-point
//    optimizations deterministic under parallelism.
//
// The runner publishes its activity into an obs::MetricsRegistry
// (exec.threads gauge, exec.tasks / exec.sweeps counters) after each
// sweep completes — publication happens on the calling thread only, so
// the registry needs no locking.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace drsm::exec {

/// Deterministic per-task seed: a pure function of (base, index).  Two
/// splitmix64 rounds keep adjacent indices uncorrelated.
std::uint64_t task_seed(std::uint64_t base, std::size_t index);

/// Context handed to every sweep task.
struct SweepTask {
  std::size_t index = 0;    // point index in the sweep, 0-based
  std::uint64_t seed = 0;   // task_seed(base_seed, index)

  /// A fresh xoshiro stream seeded for this task.
  Rng rng() const { return Rng(seed); }
};

struct SweepOptions {
  /// Threads applied to each sweep (including the calling thread);
  /// 0 = ThreadPool::default_threads() (DRSM_THREADS env override, else
  /// hardware concurrency).
  std::size_t threads = 0;
  /// Base of the per-task seed derivation.
  std::uint64_t base_seed = 0x5EEDBA5EULL;
  /// When non-null: exec.threads / exec.tasks / exec.sweeps are published
  /// here after each run()/map() returns (calling thread only).
  obs::MetricsRegistry* metrics = nullptr;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  std::size_t threads() const { return pool_.threads(); }
  std::uint64_t seed(std::size_t index) const {
    return task_seed(options_.base_seed, index);
  }

  /// Runs fn over n points and returns the results in point order.
  /// R must be default-constructible.
  template <typename R>
  std::vector<R> run(std::size_t n,
                     const std::function<R(const SweepTask&)>& fn) {
    std::vector<R> out(n);
    pool_.parallel_for(n, [&](std::size_t i) {
      out[i] = fn(SweepTask{i, seed(i)});
    });
    publish(n);
    return out;
  }

  /// Runs fn over an explicit point list, results in point order.
  template <typename R, typename Point>
  std::vector<R> map(const std::vector<Point>& points,
                     const std::function<R(const Point&, const SweepTask&)>& fn) {
    std::vector<R> out(points.size());
    pool_.parallel_for(points.size(), [&](std::size_t i) {
      out[i] = fn(points[i], SweepTask{i, seed(i)});
    });
    publish(points.size());
    return out;
  }

  /// Point-order parallel_for for tasks that fill caller-owned slots.
  void for_each(std::size_t n,
                const std::function<void(const SweepTask&)>& fn) {
    pool_.parallel_for(n,
                       [&](std::size_t i) { fn(SweepTask{i, seed(i)}); });
    publish(n);
  }

  /// Total tasks executed by this runner so far.
  std::uint64_t tasks_run() const { return tasks_run_; }

 private:
  void publish(std::size_t tasks);

  SweepOptions options_;
  ThreadPool pool_;
  std::uint64_t tasks_run_ = 0;
};

}  // namespace drsm::exec
