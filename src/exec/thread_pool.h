// Fixed-size thread pool with a blocking parallel_for — the execution
// substrate of the sweep engine (exec/sweep.h).
//
// Design constraints, in order:
//
//  1. *Determinism.*  parallel_for(n, body) invokes body(i) exactly once
//     for every i in [0, n), with no other arguments and no shared
//     mutable state supplied by the pool.  Callers that keep all mutable
//     state task-local (write results[i], read only immutable inputs)
//     therefore compute bit-identical results at any thread count and
//     under any schedule.
//  2. *Zero overhead at one thread.*  A pool of size 1 spawns no worker
//     threads at all; parallel_for degenerates to an inline loop (plus
//     two uncontended atomics per item).  Serial baselines and the
//     single-core CI hosts run the exact same code path as parallel
//     sweeps.
//  3. *Caller participation.*  The calling thread works on the job
//     alongside the workers instead of blocking, so a pool of size T
//     applies T threads with T-1 spawned workers.
//
// Work distribution is dynamic (one atomic fetch_add per item), which
// load-balances the wildly uneven task costs of protocol sweeps (a
// Berkeley chain is orders of magnitude cheaper than a Write-Once chain
// at the same parameters).  Exceptions thrown by body() are captured and
// the first one is rethrown from parallel_for after the job drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace drsm::exec {

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of size T spawns T-1
  /// workers.  0 means default_threads().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads applied to a parallel_for (spawned workers + the caller).
  std::size_t threads() const { return threads_; }

  /// The pool size used when the constructor gets 0: the DRSM_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_threads();

  /// Invokes body(i) exactly once for every i in [0, n) and returns when
  /// all invocations finished.  Rethrows the first exception thrown by
  /// any invocation (after the job drains).  Must not be called
  /// re-entrantly from inside a body.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into a vector indexed by i.
  /// R must be default-constructible.
  template <typename R>
  std::vector<R> parallel_map(std::size_t n,
                              const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  /// One parallel_for call: items are claimed with next.fetch_add and
  /// retired with done.fetch_add; the last retirement signals the cv.
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable finished;
    std::exception_ptr error;  // first failure, guarded by mu

    /// Claims and runs items until none are left.
    void work();
  };

  void worker_loop();

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;                // guards jobs_ / stop_
  std::condition_variable cv_;   // signals job arrival / shutdown
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

}  // namespace drsm::exec
