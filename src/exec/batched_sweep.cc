#include "exec/batched_sweep.h"

#include <map>

namespace drsm::exec {

BatchedSweepRunner::BatchedSweepRunner(Options options)
    : options_(options), pool_(options.threads) {}

std::vector<double> BatchedSweepRunner::acc_grid(
    analytic::AccSolver& solver, const std::vector<AnalyticCell>& cells) {
  std::vector<double> out(cells.size(), 0.0);

  // Deterministic grouping: protocol order is the enum order, cell order
  // within a group is grid order.
  std::map<int, std::vector<std::size_t>> by_kind;
  for (std::size_t i = 0; i < cells.size(); ++i)
    by_kind[static_cast<int>(cells[i].kind)].push_back(i);

  std::vector<const std::vector<std::size_t>*> groups;
  std::vector<protocols::ProtocolKind> kinds;
  for (const auto& [kind, members] : by_kind) {
    kinds.push_back(static_cast<protocols::ProtocolKind>(kind));
    groups.push_back(&members);
  }

  std::size_t batch_groups = 0;
  // AccSolver is thread-safe (sharded chain cache, guarded metrics), and
  // each task writes only its own group's result slots — the SweepRunner
  // isolation contract.
  pool_.parallel_for(groups.size(), [&](std::size_t g) {
    const std::vector<std::size_t>& members = *groups[g];
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(members.size());
    for (std::size_t cell : members) specs.push_back(cells[cell].spec);
    const std::vector<double> acc = solver.acc_batch(kinds[g], specs);
    for (std::size_t i = 0; i < members.size(); ++i)
      out[members[i]] = acc[i];
  });
  batch_groups = groups.size();

  if (options_.metrics != nullptr) {
    options_.metrics->counter("exec.batched_sweeps").inc();
    options_.metrics->counter("exec.batched_cells").inc(cells.size());
    options_.metrics->counter("exec.batched_groups").inc(batch_groups);
    options_.metrics->gauge("exec.threads")
        .set(static_cast<double>(pool_.threads()));
  }
  return out;
}

}  // namespace drsm::exec
