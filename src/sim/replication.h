// Replication harness: R independent simulation replications of one
// configuration, fanned across exec::SweepRunner and merged in fixed
// order.
//
// The paper's Table 7 compares the analytic acc against a *simulated*
// acc; a single finite run of the stochastic simulator carries sampling
// error, so the honest comparison uses several independent replications
// and a confidence interval around their mean.  This header provides
// exactly that:
//
//  * each replication r runs with seed task_seed(base_seed, r) — a pure
//    function of the options, never of thread schedule — and its own
//    WorkloadDriver built by a caller-supplied factory;
//  * replications execute in parallel on a SweepRunner (results land in
//    per-replication slots, so thread count cannot affect them);
//  * SimStats are merged replication-by-replication in index order —
//    counters and cost sums add, latency_max maxes, histograms merge
//    bucket-wise through obs::Histogram::merge — yielding the same
//    totals as a serial loop, bit for bit;
//  * the per-replication acc and mean-latency samples feed a normal-
//    approximation confidence interval (z interval; R is small but the
//    per-replication means are already averages over thousands of
//    operations).
//
// Determinism contract (enforced by tests/replication_test.cc): for
// fixed (options, base_seed, replications), run_replications returns
// bit-identical ReplicatedStats for every thread count, including 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exec/sweep.h"
#include "obs/metrics.h"
#include "protocols/protocol.h"
#include "sim/config.h"
#include "sim/event_sim.h"

namespace drsm::sim {

/// Builds the workload driver for one replication.  `seed` is the
/// replication's derived seed (also installed as SimOptions::seed);
/// `rep` its index.  Factories typically derive driver-private seeds,
/// e.g. `seed ^ 0xBEEF`, so the driver and simulator streams differ.
using DriverFactory = std::function<std::unique_ptr<WorkloadDriver>(
    std::uint64_t seed, std::size_t rep)>;

/// Normal-approximation confidence interval over per-replication means.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // z * s / sqrt(R); 0 when R < 2
  double stddev = 0.0;      // sample standard deviation of the means

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

struct ReplicationOptions {
  std::size_t replications = 8;
  /// Base of the per-replication seed derivation
  /// (exec::task_seed(base_seed, rep)).
  std::uint64_t base_seed = 0x5EEDBA5EULL;
  /// Confidence level of the reported intervals; one of 0.90, 0.95,
  /// 0.99 (nearest is used).
  double confidence = 0.95;
  /// Threads for the internally constructed runner; ignored when
  /// `runner` is set.  0 = ThreadPool default.
  std::size_t threads = 0;
  /// Optional externally owned runner to fan replications across (its
  /// base_seed is ignored; seeds always derive from this struct's).
  exec::SweepRunner* runner = nullptr;
  /// When non-null: each replication's simulator metrics are merged in
  /// replication order into this registry, plus replication.* summary
  /// gauges (see docs/OBSERVABILITY.md).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Merged results of R replications plus the per-replication spread.
struct ReplicatedStats {
  /// All replications merged: counts/costs/latency sums added in
  /// replication order, latency_max maxed, histograms merged,
  /// end_time summed (total simulated time across replications).
  /// merged.acc() is the pooled (operation-weighted) mean.
  SimStats merged;

  std::size_t replications = 0;
  std::vector<double> acc_samples;  // per-replication acc, in rep order
  ConfidenceInterval acc;           // over acc_samples (unweighted)
  ConfidenceInterval mean_latency;  // over per-replication mean latency
};

/// z quantile for the two-sided confidence level (0.90/0.95/0.99;
/// nearest of the three).
double z_for_confidence(double confidence);

/// Adds `from` into `into` (the merge order is the caller's
/// responsibility; run_replications applies it in replication order).
void merge_stats(SimStats& into, const SimStats& from);

/// Runs `options.replications` independent replications of
/// (kind, config, sim) and merges them.  sim.seed is overwritten per
/// replication with task_seed(options.base_seed, rep).
ReplicatedStats run_replications(protocols::ProtocolKind kind,
                                 const SystemConfig& config,
                                 const SimOptions& sim,
                                 const DriverFactory& make_driver,
                                 const ReplicationOptions& options = {});

}  // namespace drsm::sim
