// Commit-order tap: the runtime-side hook the coherence oracle hangs off.
//
// The serialization point of every write — the place a value is bound to
// its global sequence number (MachineContext::commit_write) — is forwarded
// here, together with every application-level write issue and read return.
// This externalizes the sequencer's commit order so an independent checker
// (src/check) can replay it and assert that every read returns the last
// serialized write, without trusting the simulator's own version counters.
//
// Times are the runtime's natural clock: the simulator clock for
// EventSimulator, the operation index for SequentialRuntime.
#pragma once

#include <cstdint>

#include "support/types.h"

namespace drsm::sim {

class CoherenceTap {
 public:
  virtual ~CoherenceTap() = default;

  /// An application write request entered the system carrying `value`.
  virtual void on_write_issue(double time, NodeId node, ObjectId object,
                              std::uint64_t value) = 0;

  /// A write was serialized: `value` is now the content of `object` at
  /// global sequence number `version`.  `node` is where the binding was
  /// applied; two-phase protocols may report the same (version, value)
  /// pair from both the writer and the sequencer.
  virtual void on_commit(double time, NodeId node, ObjectId object,
                         std::uint64_t version, std::uint64_t value) = 0;

  /// A read returned `value` (at `version`; 0 = never written) to the
  /// application at `node`.
  virtual void on_read(double time, NodeId node, ObjectId object,
                       std::uint64_t value, std::uint64_t version) = 0;
};

}  // namespace drsm::sim
