#include "sim/event_sim.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <map>

#include "support/error.h"
#include "support/text.h"

namespace drsm::sim {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

namespace {

/// The legacy MessageObserver as a sink: forwards each kMsgSend event to
/// the callback (rebuilding the fsm::Message the old signature carried)
/// and passes everything through to the next sink in the chain.
class ObserverSink final : public obs::EventSink {
 public:
  explicit ObserverSink(MessageObserver fn) : fn_(std::move(fn)) {}

  obs::EventSink* next = nullptr;

  void on_event(const obs::TraceEvent& event) override {
    if (event.kind == obs::EventKind::kMsgSend) {
      Message msg;
      msg.token = event.token;
      msg.value = event.value;
      msg.version = event.version;
      msg.hops = event.hops;
      msg.sender = event.node;
      fn_(static_cast<SimTime>(event.time), event.node, event.peer, msg);
    }
    if (next != nullptr) next->on_event(event);
  }

 private:
  MessageObserver fn_;
};

}  // namespace

struct EventSimulator::Impl {
  // -- static configuration ------------------------------------------------
  protocols::ProtocolKind kind;
  SystemConfig config;
  SimOptions options;

  // -- observability -------------------------------------------------------
  // `sink` is the head of the active sink chain (observer adapter first,
  // then the external sink); null when tracing is disabled, so every
  // event site costs exactly one branch in that case.  The sink pointers
  // live with the statistics, after the hot simulation state.

  void rewire_sinks() {
    if (observer_sink != nullptr) {
      observer_sink->next = external_sink;
      sink = observer_sink.get();
    } else {
      sink = external_sink;
    }
  }

  // Emission helpers are cold and out-of-line so the functions on the
  // critical path stay small enough to inline when tracing is detached.
  [[gnu::cold, gnu::noinline]] void emit_message_event(
      obs::EventKind kind_, NodeId node, NodeId peer, const Message& msg,
      std::uint64_t id, Cost cost) const {
    obs::TraceEvent event;
    event.time = static_cast<double>(now);
    event.kind = kind_;
    event.node = node;
    event.peer = peer;
    event.object = msg.token.object;
    event.msg_id = id;
    event.token = msg.token;
    event.value = msg.value;
    event.version = msg.version;
    event.hops = msg.hops;
    event.cost = cost;
    event.span = msg.span;
    sink->on_event(event);
  }

  // -- simulation state ----------------------------------------------------
  Rng rng;
  SimTime now = 0;
  // Pending events: POD records from the slab arena, popped in
  // (time, schedule order) — see sim/event_queue.h.
  EventQueue events;

  // Cached dimensions of the flat matrices below.
  std::uint32_t num_nodes = 1;
  std::uint32_t num_objects = 1;
  NodeId seq_node = 0;  // the sequencer, node num_clients

  // machines[node * num_objects + object]: one flat matrix instead of a
  // vector-of-vectors, so the hot lookup is one multiply, not two
  // dependent loads.
  std::vector<std::unique_ptr<fsm::ProtocolMachine>> machines;
  // Per-node queues and processing state.
  std::vector<RingQueue<Message>> local_queue;
  std::vector<RingQueue<Message>> dist_queue;
  std::vector<std::uint8_t> local_disabled;  // [node * num_objects + object]
  std::vector<std::uint8_t> busy;            // vector<bool> proxies are slower
  // FIFO channels: latest scheduled delivery per (src, dst), flat
  // [src * num_nodes + dst].
  std::vector<SimTime> channel_front;

  // Outstanding application op per node.
  struct Outstanding {
    bool active = false;
    ObjectId object = 0;
    OpKind kind = OpKind::kRead;
    SimTime issued = 0;
    std::uint64_t span = 0;  // causal span id assigned at issue
  };
  std::vector<Outstanding> outstanding;
  bool stopped_issuing = false;

  // Coherence checking: last version observed by each node per object,
  // flat [node * num_objects + object].
  std::vector<std::uint64_t> last_seen_version;

  std::uint64_t version_counter = 0;
  std::uint64_t write_value_counter = 0;

  // -- statistics ----------------------------------------------------------
  Cost total_cost = 0.0;
  std::size_t total_messages = 0;
  std::size_t completed_ops = 0;
  Cost cost_at_warmup = 0.0;
  std::size_t reads_measured = 0;
  std::size_t writes_measured = 0;
  double latency_sum = 0.0;
  SimTime latency_max = 0;
  double read_latency_sum = 0.0;
  double write_latency_sum = 0.0;
  // Dense message mix, one slot per MsgType; converted to the SimStats
  // map at run end (only types that occurred, as before).
  std::array<std::size_t, fsm::kNumMsgTypes> message_mix{};
  std::vector<Cost> cost_by_initiator;
  std::vector<Cost> cost_by_object;
  std::vector<std::size_t> handled_by_node;

  obs::EventSink* sink = nullptr;
  obs::EventSink* external_sink = nullptr;
  std::unique_ptr<ObserverSink> observer_sink;
  CoherenceTap* tap = nullptr;
  // In-flight message counts per (src, dst), flat [src * num_nodes + dst];
  // sized only when options.max_channel_depth bounds the channels.
  std::vector<std::uint32_t> channel_depth;
  obs::MetricsRegistry* metrics = nullptr;
  obs::TimeSeries* seq_depth_series = nullptr;  // resolved at run start
  obs::TimeSeries* seq_util_series = nullptr;
  obs::Histogram latency_hist;  // post-warmup, always collected
  obs::Quantile latency_q;      // post-warmup quantile sketch
  std::uint64_t msg_seq = 0;    // pairs sends with receives
  std::uint64_t span_seq = 0;   // causal span ids, one per application op
  // Span of the message currently being handled; messages sent while
  // handling inherit it, so causality propagates through grant /
  // invalidation / recall / NACK chains automatically.
  std::uint64_t current_span_ = 0;

  WorkloadDriver* driver = nullptr;

  // -- MachineContext ------------------------------------------------------
  class Ctx final : public fsm::MachineContext {
   public:
    Ctx(Impl& impl, NodeId self) : impl_(impl), self_(self) {}

    NodeId self() const override { return self_; }
    std::size_t num_clients() const override {
      return impl_.config.num_clients;
    }
    const fsm::CostModel& costs() const override {
      return impl_.config.costs;
    }

    void send(NodeId dest, Message msg) override {
      impl_.send_message(self_, dest, msg);
    }

    void send_except(std::initializer_list<NodeId> excluded,
                     Message msg) override {
      DRSM_CHECK(std::find(excluded.begin(), excluded.end(), self_) !=
                     excluded.end(),
                 "send_except: sender must exclude itself");
      for (NodeId node = 0; node < num_nodes(); ++node) {
        if (std::find(excluded.begin(), excluded.end(), node) !=
            excluded.end())
          continue;
        impl_.send_message(self_, node, msg);
      }
    }

    void return_read(std::uint64_t value, std::uint64_t version) override {
      impl_.on_read_return(self_, value, version);
    }
    void complete_write(std::uint64_t version) override {
      impl_.on_op_complete(self_, version);
    }
    void complete_op() override { impl_.on_op_complete(self_, 0); }

    void disable_local_queue() override {
      impl_.local_disabled[self_ * impl_.num_objects + impl_.current_object_] =
          1;
      if (impl_.sink != nullptr) [[unlikely]]
        impl_.emit_queue_event(obs::EventKind::kQueueDisable, self_);
    }
    void enable_local_queue() override {
      impl_.local_disabled[self_ * impl_.num_objects + impl_.current_object_] =
          0;
      if (impl_.sink != nullptr) [[unlikely]]
        impl_.emit_queue_event(obs::EventKind::kQueueEnable, self_);
      impl_.try_process(self_);
    }

    std::uint64_t next_version() override {
      return ++impl_.version_counter;
    }

    void commit_write(std::uint64_t version, std::uint64_t value) override {
      if (impl_.tap != nullptr) [[unlikely]]
        impl_.tap->on_commit(static_cast<double>(impl_.now), self_,
                             impl_.current_object_, version, value);
    }

   private:
    Impl& impl_;
    NodeId self_;
  };

  ObjectId current_object_ = 0;  // object of the message being handled

  // -- mechanics -----------------------------------------------------------
  Impl(protocols::ProtocolKind k, const SystemConfig& cfg,
       const SimOptions& opts)
      : kind(k), config(cfg), options(opts), rng(opts.seed),
        events(opts.scheduler) {
    num_nodes = static_cast<std::uint32_t>(config.num_clients + 1);
    num_objects = static_cast<std::uint32_t>(config.num_objects);
    seq_node = static_cast<NodeId>(config.num_clients);
    const std::size_t nodes = num_nodes;
    machines.reserve(nodes * config.num_objects);
    for (NodeId node = 0; node < nodes; ++node)
      for (ObjectId obj = 0; obj < config.num_objects; ++obj)
        machines.push_back(
            protocols::make_machine(kind, node, config.num_clients));
    local_queue.resize(nodes);
    dist_queue.resize(nodes);
    local_disabled.assign(nodes * config.num_objects, 0);
    busy.assign(nodes, 0);
    channel_front.assign(nodes * nodes, 0);
    if (options.max_channel_depth > 0)
      channel_depth.assign(nodes * nodes, 0);
    outstanding.resize(nodes);
    cost_by_initiator.assign(nodes, 0.0);
    cost_by_object.assign(config.num_objects, 0.0);
    handled_by_node.assign(nodes, 0);
    last_seen_version.assign(nodes * config.num_objects, 0);
    if (options.latency.max_latency > options.latency.min_latency) {
      latency_range =
          options.latency.max_latency - options.latency.min_latency + 1;
      latency_threshold = (~latency_range + 1) % latency_range;
    }
  }

  // Typed scheduling: every former closure is one POD record.  Payloads
  // are copied at schedule time, matching the old by-value captures.
  void schedule_deliver(SimTime delay, NodeId dst, const Message& msg,
                        std::uint64_t msg_id) {
    SimEvent& event = events.schedule(now + delay);
    event.type = SimEventType::kDeliver;
    event.node = dst;
    event.msg = msg;
    event.msg_id = msg_id;
  }

  void schedule_process(NodeId node, const Message& msg) {
    SimEvent& event = events.schedule(now + options.latency.processing_time);
    event.type = SimEventType::kProcess;
    event.node = node;
    event.msg = msg;
  }

  void schedule_start_op(SimTime think_time, NodeId node,
                         const WorkloadDriver::Op& op) {
    SimEvent& event = events.schedule(now + think_time);
    event.type = SimEventType::kStartOp;
    event.node = node;
    event.object = op.object;
    event.op = op.kind;
  }

  // Channel latency draw, one per inter-node send.  The range and the
  // Lemire rejection threshold are constants of the run, precomputed at
  // construction: this is Rng::uniform_index unrolled with the two
  // per-call 64-bit divisions for the threshold hoisted out (the result
  // sequence is bit-identical — same raw draws, same rejections, same
  // modulus).
  std::uint64_t latency_range = 0;      // 0 = constant latency
  std::uint64_t latency_threshold = 0;  // (2^64 - range) mod range

  SimTime draw_latency() {
    if (latency_range == 0) return options.latency.min_latency;
    for (;;) {
      const std::uint64_t r = rng.next();
      if (r >= latency_threshold)
        return options.latency.min_latency + r % latency_range;
    }
  }

  [[gnu::cold, gnu::noinline]] void emit_op_event(obs::EventKind kind_,
                                                  fsm::OpKind op, NodeId node,
                                                  ObjectId object, double cost,
                                                  std::uint64_t span) const {
    obs::TraceEvent event;
    event.time = static_cast<double>(now);
    event.kind = kind_;
    event.op = op;
    event.node = node;
    event.object = object;
    event.cost = cost;
    event.span = span;
    sink->on_event(event);
  }

  [[gnu::cold, gnu::noinline]] void sample_sequencer_series(NodeId dst) {
    seq_depth_series->sample(static_cast<double>(now),
                             static_cast<double>(dist_queue[dst].size() + 1));
    if (now > 0)
      seq_util_series->sample(
          static_cast<double>(now),
          static_cast<double>(handled_by_node[dst]) *
              static_cast<double>(options.latency.processing_time) /
              static_cast<double>(now));
  }

  [[gnu::cold, gnu::noinline]] void emit_queue_event(obs::EventKind kind_,
                                                     NodeId node) {
    obs::TraceEvent event;
    event.time = static_cast<double>(now);
    event.kind = kind_;
    event.node = node;
    event.object = current_object_;
    event.span = current_span_;
    sink->on_event(event);
  }

  void send_message(NodeId src, NodeId dst, Message msg) {
    msg.sender = src;
    // Inherit the span of the message being handled: protocol machines
    // never set spans themselves, so the runtime stamps causality here
    // (before the local-action early return — self-sends continue the
    // same causal chain when they are eventually handled).
    msg.span = current_span_;
    if (src == dst) {
      // Local action: free, delivered instantly at the next event; not an
      // inter-node message, so never traced or queue-depth sampled.
      schedule_deliver(0, dst, msg, /*msg_id=*/0);
      return;
    }
    const Cost cost = config.costs.message_cost(msg.token.params);
    total_cost += cost;
    ++total_messages;
    ++message_mix[static_cast<std::size_t>(msg.token.type)];
    if (msg.token.initiator < cost_by_initiator.size())
      cost_by_initiator[msg.token.initiator] += cost;
    if (msg.token.object < cost_by_object.size())
      cost_by_object[msg.token.object] += cost;
    if (!channel_depth.empty()) {
      DRSM_CHECK(++channel_depth[src * num_nodes + dst] <=
                     options.max_channel_depth,
                 strfmt("channel %u->%u exceeded its depth bound", src, dst));
    }
    // FIFO channel: never deliver before the previously sent message.
    SimTime arrival = now + draw_latency();
    arrival = std::max(arrival, channel_front[src * num_nodes + dst]);
    channel_front[src * num_nodes + dst] = arrival;
    if (sink == nullptr) [[likely]] {
      // Tracing detached: deliveries carry no message id and skip the
      // per-delivery trace emission (queue-depth sampling, when a metrics
      // registry is attached, happens in route() and needs no id).
      schedule_deliver(arrival - now, dst, msg, /*msg_id=*/0);
      return;
    }
    const std::uint64_t id = ++msg_seq;
    emit_message_event(obs::EventKind::kMsgSend, src, dst, msg, id, cost);
    schedule_deliver(arrival - now, dst, msg, id);
  }

  /// Delivery tail shared by the traced and untraced paths.  When
  /// kRefilePending is set the caller guarantees `msg` lives inside the
  /// record handed out by the queue's last pop_next(): the idle-node fast
  /// path then re-files that record as the kProcess event in place (same
  /// (time, seq) stamp schedule() would assign, payload already there)
  /// instead of allocating and copying a fresh one.
  template <bool kRefilePending>
  void route_impl(NodeId dst, const Message& msg) {
    if (seq_depth_series != nullptr) [[unlikely]] {
      // Sequencer queue-depth/utilization sampling, one sample per
      // inter-node delivery to the sequencer (self-sends are local
      // actions, never sampled), taken before the enqueue below — the
      // same points and values the traced path used to record.
      if (dst == seq_node && msg.sender != dst) sample_sequencer_series(dst);
    }
    if (!channel_depth.empty() && msg.sender != dst)
      --channel_depth[msg.sender * num_nodes + dst];
    RingQueue<Message>& queue = dist_queue[dst];
    if (!busy[dst] && queue.empty()) {
      // The delivery is the only runnable work at dst: start processing
      // directly, skipping the enqueue/dequeue round trip.
      busy[dst] = 1;
      if constexpr (kRefilePending) {
        SimEvent& event =
            events.refile_pending(now + options.latency.processing_time);
        event.type = SimEventType::kProcess;
        // event.node and event.msg already hold dst and the payload —
        // the re-filed record is the delivery record itself.
      } else {
        schedule_process(dst, msg);
      }
      return;
    }
    queue.push_back(msg);
    try_process(dst);
  }

  void route(NodeId dst, const Message& msg) {
    route_impl<false>(dst, msg);
  }

  [[gnu::cold, gnu::noinline]] void deliver_traced(NodeId dst,
                                                   const Message& msg,
                                                   std::uint64_t msg_id) {
    if (sink != nullptr)
      emit_message_event(obs::EventKind::kMsgRecv, dst, msg.sender, msg,
                         msg_id, config.costs.message_cost(msg.token.params));
    route(dst, msg);
  }

  void try_process(NodeId node) {
    if (busy[node]) return;
    RingQueue<Message>& dq = dist_queue[node];
    if (!dq.empty()) {
      busy[node] = 1;
      schedule_process(node, dq.front());
      dq.pop_front();
      return;
    }
    RingQueue<Message>& lq = local_queue[node];
    if (!lq.empty() &&
        !local_disabled[node * num_objects + lq.front().token.object]) {
      busy[node] = 1;
      schedule_process(node, lq.front());
      lq.pop_front();
    }
  }

  void handle(NodeId node, const Message& msg) {
    ++handled_by_node[node];
    current_object_ = msg.token.object;
    current_span_ = msg.span;
    DRSM_CHECK(current_object_ < config.num_objects, "bad object id");
    Ctx ctx(*this, node);
    if (sink == nullptr) {
      machines[node * num_objects + current_object_]->on_message(ctx, msg);
      return;
    }
    handle_traced(ctx, node, msg);
  }

  [[gnu::cold, gnu::noinline]] void handle_traced(Ctx& ctx, NodeId node,
                                                  const Message& msg) {
    fsm::ProtocolMachine& machine =
        *machines[node * num_objects + current_object_];
    const char* before = machine.state_name();
    const ObjectId object = current_object_;
    machine.on_message(ctx, msg);
    const char* after = machine.state_name();
    if (before != after && std::strcmp(before, after) != 0) {
      obs::TraceEvent event;
      event.time = static_cast<double>(now);
      event.kind = obs::EventKind::kStateTransition;
      event.node = node;
      event.object = object;
      event.span = msg.span;
      event.detail = before;
      event.detail2 = after;
      sink->on_event(event);
    }
  }

  // -- application processes -----------------------------------------------
  void issue_next(NodeId node) {
    if (stopped_issuing) return;
    const auto op = driver->next_op(node);
    if (!op.has_value()) return;
    schedule_start_op(op->think_time, node, *op);
  }

  void start_op(NodeId node, const WorkloadDriver::Op& op) {
    DRSM_CHECK(!outstanding[node].active, "node already has an op in flight");
    const std::uint64_t span = ++span_seq;
    outstanding[node] = {true, op.object, op.kind, now, span};
    if (sink != nullptr) [[unlikely]]
      emit_op_event(obs::EventKind::kOpIssue, op.kind, node, op.object, 0.0,
                    span);

    Message request;
    request.span = span;
    switch (op.kind) {
      case OpKind::kRead: request.token.type = MsgType::kReadReq; break;
      case OpKind::kWrite: request.token.type = MsgType::kWriteReq; break;
      case OpKind::kEject: request.token.type = MsgType::kEject; break;
      case OpKind::kSync: request.token.type = MsgType::kSyncReq; break;
    }
    request.token.initiator = node;
    request.token.object = op.object;
    request.token.params = op.kind == OpKind::kWrite
                               ? ParamPresence::kWriteParams
                               : ParamPresence::kReadParams;
    request.value = ++write_value_counter;
    request.sender = node;
    if (tap != nullptr && op.kind == OpKind::kWrite) [[unlikely]]
      tap->on_write_issue(static_cast<double>(now), node, op.object,
                          request.value);

    // Client application requests enter the local queue; the sequencer's
    // enter its distributed queue (Section 2).  When the node is idle and
    // the request would be the next message dequeued anyway, it goes
    // straight to processing — identical to push-then-try_process, which
    // pops this very message in that situation, minus the queue round
    // trip.
    if (node == seq_node) {
      request.token.queue = QueueKind::kDistributed;
      RingQueue<Message>& dq = dist_queue[node];
      if (!busy[node] && dq.empty()) {
        busy[node] = 1;
        schedule_process(node, request);
        return;
      }
      dq.push_back(request);
    } else {
      request.token.queue = QueueKind::kLocal;
      RingQueue<Message>& lq = local_queue[node];
      if (!busy[node] && dist_queue[node].empty() && lq.empty() &&
          !local_disabled[node * num_objects + request.token.object]) {
        busy[node] = 1;
        schedule_process(node, request);
        return;
      }
      lq.push_back(request);
    }
    try_process(node);
  }

  void on_read_return(NodeId node, std::uint64_t value,
                      std::uint64_t version) {
    if (tap != nullptr) [[unlikely]]
      tap->on_read(static_cast<double>(now), node, current_object_, value,
                   version);
    if (options.check_coherence) {
      std::uint64_t& seen = last_seen_version[node * num_objects +
                                              current_object_];
      DRSM_CHECK(version >= seen || version == 0,
                 strfmt("coherence: node %u saw version regress on object %u",
                        node, current_object_));
      if (version > 0) seen = version;
    }
    on_op_complete(node, version);
  }

  void on_op_complete(NodeId node, std::uint64_t /*version*/) {
    DRSM_CHECK(outstanding[node].active, "completion without an op");
    const OpKind kind = outstanding[node].kind;
    const SimTime latency = now - outstanding[node].issued;
    outstanding[node].active = false;
    if (sink != nullptr) [[unlikely]]
      emit_op_event(obs::EventKind::kOpComplete, kind, node,
                    outstanding[node].object,
                    static_cast<double>(latency),
                    outstanding[node].span);

    ++completed_ops;
    if (completed_ops == options.warmup_ops) cost_at_warmup = total_cost;
    if (completed_ops > options.warmup_ops) {
      latency_hist.record(static_cast<double>(latency));
      latency_q.record(static_cast<double>(latency));
      latency_sum += static_cast<double>(latency);
      latency_max = std::max(latency_max, latency);
      if (kind == OpKind::kRead) {
        ++reads_measured;
        read_latency_sum += static_cast<double>(latency);
      }
      if (kind == OpKind::kWrite) {
        ++writes_measured;
        write_latency_sum += static_cast<double>(latency);
      }
    }
    if (completed_ops >= options.max_ops) {
      stopped_issuing = true;
      return;
    }
    issue_next(node);
  }

  // -- dense event dispatch ------------------------------------------------
  // One flat handler per SimEventType, indexed directly by the type tag.
  // The table replaces the per-event switch in the hot loop: the indirect
  // call is unconditionally predicted-taken and each handler body stays
  // small enough to inline its own fast paths.
  static void dispatch_deliver(Impl& self, SimEvent& ev) {
    if (ev.msg_id != 0) [[unlikely]]
      self.deliver_traced(ev.node, ev.msg, ev.msg_id);
    else
      self.route_impl<true>(ev.node, ev.msg);
  }

  static void dispatch_process(Impl& self, SimEvent& ev) {
    const NodeId node = ev.node;
    self.handle(node, ev.msg);
    self.busy[node] = 0;
    self.try_process(node);
  }

  static void dispatch_start_op(Impl& self, SimEvent& ev) {
    if (!self.stopped_issuing)
      self.start_op(ev.node, {ev.object, ev.op, /*think_time=*/0});
  }

  static constexpr std::array<void (*)(Impl&, SimEvent&), 3> kDispatch = {
      &Impl::dispatch_deliver, &Impl::dispatch_process,
      &Impl::dispatch_start_op};

  SimStats run(WorkloadDriver& wl) {
    driver = &wl;
    if (metrics != nullptr) {
      seq_depth_series = &metrics->series("sim.seq_queue_depth");
      seq_util_series = &metrics->series("sim.seq_utilization");
    }
    const std::size_t nodes = config.num_clients + 1;
    for (NodeId node = 0; node < nodes; ++node) issue_next(node);

    // Run until the event queue drains: once max_ops operations have
    // completed no new operations are issued, but the tails of in-flight
    // traces (e.g. invalidations behind a fire-and-forget write) still
    // execute and are charged, so measured costs cover whole traces.
    const auto wall_start = std::chrono::steady_clock::now();
    if (options.dispatch == DispatchKind::kDenseTable) {
      // Production loop: zero-copy batched-tick pops (the queue hands out
      // whole one-tick FIFOs without re-touching the wheel) driven
      // through a flat function-pointer table indexed by the event type.
      // The popped record stays valid for the whole handler call — the
      // arena recycles it on the next pop — so the Message payload is
      // never copied out of the queue.
      while (SimEvent* ev = events.pop_next()) {
        DRSM_CHECK(ev->time >= now, "time went backwards");
        now = ev->time;
        kDispatch[static_cast<std::size_t>(ev->type)](*this, *ev);
      }
    } else {
      // Reference loop: per-event copy-out switch, kept as the
      // differential baseline for tests/sim_determinism_test.cc.
      SimEvent ev;
      while (events.pop(ev)) {
        DRSM_CHECK(ev.time >= now, "time went backwards");
        now = ev.time;
        switch (ev.type) {
          case SimEventType::kDeliver:
            if (ev.msg_id != 0) [[unlikely]]
              deliver_traced(ev.node, ev.msg, ev.msg_id);
            else
              route(ev.node, ev.msg);
            break;
          case SimEventType::kProcess:
            handle(ev.node, ev.msg);
            busy[ev.node] = 0;
            try_process(ev.node);
            break;
          case SimEventType::kStartOp:
            if (!stopped_issuing)
              start_op(ev.node, {ev.object, ev.op, /*think_time=*/0});
            break;
        }
      }
    }
    // Wall-clock throughput of the event loop.  Only ever published as a
    // gauge: simulated results stay bit-identical regardless of how fast
    // the host ran.
    wall_seconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();

    SimStats stats;
    const std::size_t warm =
        std::min(options.warmup_ops, completed_ops);
    stats.warmup_ops = warm;
    stats.warmup_cost = warm < options.warmup_ops ? total_cost
                                                  : cost_at_warmup;
    stats.measured_ops = completed_ops - warm;
    stats.measured_cost = total_cost - stats.warmup_cost;
    stats.reads = reads_measured;
    stats.writes = writes_measured;
    stats.messages = total_messages;
    stats.end_time = now;
    // Latency aggregates are only recorded post-warmup; with zero
    // measured operations they must read as empty, whatever leaked in.
    if (stats.measured_ops > 0) {
      stats.latency_sum = latency_sum;
      stats.latency_max = latency_max;
      stats.read_latency_sum = read_latency_sum;
      stats.write_latency_sum = write_latency_sum;
    }
    for (std::size_t type = 0; type < message_mix.size(); ++type)
      if (message_mix[type] > 0)
        stats.message_mix[static_cast<MsgType>(type)] = message_mix[type];
    stats.cost_by_initiator = cost_by_initiator;
    stats.cost_by_object = cost_by_object;
    stats.handled_by_node = handled_by_node;
    stats.latency_histogram = latency_hist;
    stats.latency_quantiles = latency_q;
    if (metrics != nullptr) publish_metrics(stats);
    return stats;
  }

  double wall_seconds_ = 0.0;  // event-loop wall time of the last run

  /// Bytes held by the per-node ring buffers (their high-water capacity).
  std::size_t queue_bytes() const {
    std::size_t bytes = 0;
    for (const auto& q : local_queue) bytes += q.capacity_bytes();
    for (const auto& q : dist_queue) bytes += q.capacity_bytes();
    return bytes;
  }

  void publish_metrics(const SimStats& stats) {
    metrics->counter("sim.runs").inc();
    metrics->counter("sim.messages").inc(stats.messages);
    metrics->counter("sim.ops").inc(completed_ops);
    metrics->counter("sim.reads").inc(stats.reads);
    metrics->counter("sim.writes").inc(stats.writes);
    metrics->counter("sim.events").inc(events.scheduled());
    metrics->counter("sim.alloc_bytes")
        .inc(events.arena_bytes() + queue_bytes());
    metrics->gauge("sim.peak_pending_events")
        .set(static_cast<double>(events.peak_pending()));
    for (std::size_t type = 0; type < message_mix.size(); ++type)
      if (message_mix[type] > 0)
        metrics
            ->counter(std::string("sim.msg.") +
                      fsm::to_string(static_cast<MsgType>(type)))
            .inc(message_mix[type]);
    metrics->gauge("sim.acc").set(stats.acc());
    metrics->gauge("sim.measured_cost").add(stats.measured_cost);
    metrics->gauge("sim.end_time").set(static_cast<double>(stats.end_time));
    metrics->gauge("sim.mean_latency").set(stats.mean_latency());
    metrics->gauge("sim.wall_seconds").set(wall_seconds_);
    if (wall_seconds_ > 0.0)
      metrics->gauge("sim.events_per_sec")
          .set(static_cast<double>(events.scheduled()) / wall_seconds_);
    if (options.latency.processing_time > 0)
      metrics->gauge("sim.seq_utilization_total")
          .set(stats.utilization(static_cast<NodeId>(config.num_clients),
                                 options.latency.processing_time));
    metrics->histogram("sim.latency").merge(latency_hist);
  }
};

EventSimulator::EventSimulator(protocols::ProtocolKind kind,
                               const SystemConfig& config,
                               const SimOptions& options)
    : impl_(std::make_unique<Impl>(kind, config, options)) {}

EventSimulator::~EventSimulator() = default;

void EventSimulator::set_observer(MessageObserver observer) {
  if (observer) {
    impl_->observer_sink = std::make_unique<ObserverSink>(std::move(observer));
  } else {
    impl_->observer_sink.reset();
  }
  impl_->rewire_sinks();
}

void EventSimulator::set_sink(obs::EventSink* sink) {
  impl_->external_sink = sink;
  impl_->rewire_sinks();
}

void EventSimulator::set_metrics(obs::MetricsRegistry* metrics) {
  impl_->metrics = metrics;
}

void EventSimulator::set_coherence_tap(CoherenceTap* tap) {
  impl_->tap = tap;
}

SimStats EventSimulator::run(WorkloadDriver& driver) {
  return impl_->run(driver);
}

const char* EventSimulator::state_name(NodeId node, ObjectId object) const {
  DRSM_CHECK(node < impl_->num_nodes, "node out of range");
  DRSM_CHECK(object < impl_->num_objects, "object out of range");
  return impl_->machines[node * impl_->num_objects + object]->state_name();
}

}  // namespace drsm::sim
