#include "sim/event_queue.h"

#include <algorithm>

namespace drsm::sim {

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {}

std::uint32_t EventQueue::alloc() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = at(index).link;
    return index;
  }
  if (blocks_.empty() || bump_ == kBlockEvents) {
    blocks_.push_back(std::make_unique<SimEvent[]>(kBlockEvents));
    bump_ = 0;
  }
  return static_cast<std::uint32_t>((blocks_.size() - 1) * kBlockEvents +
                                    bump_++);
}

void EventQueue::recycle(std::uint32_t index) {
  at(index).link = free_head_;
  free_head_ = index;
}

void EventQueue::bucket_append(Bucket& bucket, std::uint32_t index) {
  at(index).link = kNil;
  if (bucket.head == kNil) {
    bucket.head = bucket.tail = index;
  } else {
    at(bucket.tail).link = index;
    bucket.tail = index;
  }
}

void EventQueue::l0_insert(std::uint32_t index) {
  // An L0 slot holds a single tick, so its list is the final pop order
  // for that time and must stay seq-sorted.  Direct schedules arrive in
  // ascending seq (append fast path); events migrating in from L1 or the
  // overflow heap may carry older seqs — they were scheduled earlier,
  // toward a then-distant time — and walk to their sorted spot.
  Bucket& bucket = l0_[at(index).time & (kL0Slots - 1)];
  const std::uint64_t seq = at(index).seq;
  if (bucket.head == kNil || at(bucket.tail).seq < seq) {
    bucket_append(bucket, index);
  } else if (seq < at(bucket.head).seq) {
    at(index).link = bucket.head;
    bucket.head = index;
  } else {
    std::uint32_t prev = bucket.head;
    while (at(prev).link != kNil && at(at(prev).link).seq < seq)
      prev = at(prev).link;
    at(index).link = at(prev).link;
    at(prev).link = index;
  }
  ++l0_size_;
}

void EventQueue::wheel_insert(std::uint32_t index) {
  const SimTime time = at(index).time;
  if (time - cur_ < kL0Slots) {
    l0_insert(index);
    ++wheel_size_;
  } else if ((time >> kL0Bits) - (cur_ >> kL0Bits) < kL1Slots) {
    // L1 lists need no ordering discipline: cascade() re-files each event
    // through the seq-sorting l0_insert when its window opens.
    bucket_append(l1_[(time >> kL0Bits) & (kL1Slots - 1)], index);
    ++wheel_size_;
  } else {
    heap_push(index);
  }
}

void EventQueue::cascade() {
  // cur_ just crossed into a new kL0Slots-aligned window; every event in
  // the L1 slot covering it now fits L0.
  Bucket& slot = l1_[(cur_ >> kL0Bits) & (kL1Slots - 1)];
  std::uint32_t index = slot.head;
  slot.head = slot.tail = kNil;
  while (index != kNil) {
    const std::uint32_t next = at(index).link;
    l0_insert(index);
    index = next;
  }
  refill_from_overflow();
}

void EventQueue::refill_from_overflow() {
  // Overflow pops in (time, seq) order, so bucket FIFO order — and with
  // it the global pop order — is preserved for events that land together.
  while (!overflow_.empty() &&
         (at(overflow_.front()).time >> kL0Bits) - (cur_ >> kL0Bits) <
             kL1Slots) {
    // size_ is unaffected: the event just moves between structures.
    wheel_insert(heap_pop());
  }
}

bool EventQueue::heap_later(std::uint32_t a, std::uint32_t b) const {
  const SimEvent& ea = at(a);
  const SimEvent& eb = at(b);
  return ea.time != eb.time ? ea.time > eb.time : ea.seq > eb.seq;
}

void EventQueue::heap_push(std::uint32_t index) {
  overflow_.push_back(index);
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   return heap_later(a, b);
                 });
}

std::uint32_t EventQueue::heap_pop() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return heap_later(a, b);
                });
  const std::uint32_t index = overflow_.back();
  overflow_.pop_back();
  return index;
}

SimEvent& EventQueue::schedule(SimTime time) {
  DRSM_CHECK(time >= cur_, "EventQueue: scheduling into the past");
  const std::uint32_t index = alloc();
  SimEvent& event = at(index);
  event.time = time;
  event.seq = ++seq_;
  event.msg_id = 0;
  ++size_;
  peak_pending_ = std::max(peak_pending_, size_);
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_push(index);
  } else {
    wheel_insert(index);
  }
  return event;
}

bool EventQueue::pop(SimEvent& out) {
  if (size_ == 0) return false;
  std::uint32_t index;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    index = heap_pop();
    cur_ = at(index).time;
  } else {
    for (;;) {
      if (wheel_size_ == 0) {
        // Everything pending sits beyond the old horizon: jump the wheel
        // to the earliest overflow event and re-home the horizon there.
        cur_ = at(overflow_.front()).time;
        refill_from_overflow();
        continue;
      }
      if (l0_size_ == 0) {
        // Current window exhausted; hop straight to the next boundary.
        cur_ = (cur_ | (kL0Slots - 1)) + 1;
        cascade();
        continue;
      }
      Bucket& bucket = l0_[cur_ & (kL0Slots - 1)];
      if (bucket.head != kNil) {
        index = bucket.head;
        bucket.head = at(index).link;
        if (bucket.head == kNil) bucket.tail = kNil;
        --l0_size_;
        --wheel_size_;
        break;
      }
      ++cur_;
      if ((cur_ & (kL0Slots - 1)) == 0) cascade();
    }
  }
  out = at(index);
  recycle(index);
  --size_;
  return true;
}

}  // namespace drsm::sim
