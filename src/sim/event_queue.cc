#include "sim/event_queue.h"

namespace drsm::sim {

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {}

std::uint32_t EventQueue::alloc_slow() {
  if (blocks_.empty() || bump_ == kBlockEvents) {
    blocks_.push_back(std::make_unique<SimEvent[]>(kBlockEvents));
    bump_ = 0;
  }
  return static_cast<std::uint32_t>((blocks_.size() - 1) * kBlockEvents +
                                    bump_++);
}

void EventQueue::cascade() {
  // cur_ just crossed into a new kL0Slots-aligned window; every event in
  // the L1 slot covering it now fits L0.
  Bucket& slot = l1_[(cur_ >> kL0Bits) & (kL1Slots - 1)];
  std::uint32_t index = slot.head;
  slot.head = slot.tail = kNil;
  while (index != kNil) {
    const std::uint32_t next = at(index).link;
    l0_insert(index);
    index = next;
  }
  refill_from_overflow();
}

void EventQueue::refill_from_overflow() {
  // Overflow pops in (time, seq) order, so bucket FIFO order — and with
  // it the global pop order — is preserved for events that land together.
  while (!overflow_.empty() &&
         (at(overflow_.front()).time >> kL0Bits) - (cur_ >> kL0Bits) <
             kL1Slots) {
    // size_ is unaffected: the event just moves between structures.
    wheel_insert(heap_pop());
  }
}

bool EventQueue::heap_later(std::uint32_t a, std::uint32_t b) const {
  const SimEvent& ea = at(a);
  const SimEvent& eb = at(b);
  return ea.time != eb.time ? ea.time > eb.time : ea.seq > eb.seq;
}

void EventQueue::heap_push(std::uint32_t index) {
  overflow_.push_back(index);
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   return heap_later(a, b);
                 });
}

std::uint32_t EventQueue::heap_pop() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return heap_later(a, b);
                });
  const std::uint32_t index = overflow_.back();
  overflow_.pop_back();
  return index;
}

void EventQueue::advance_tick() {
  // Entered with the tick bucket empty.  An occupied slot at index >= the
  // cursor's slot always belongs to the current 1024-tick window (an
  // event can only be filed into L0 while within the horizon, so a
  // same-window-or-later collision is impossible); slots below the
  // cursor's hold next-window events and are reached after the boundary
  // hop + cascade, exactly as the old one-tick scan did.
  tick_active_ = false;
  for (;;) {
    if (wheel_size_ == 0) {
      // Everything pending sits beyond the old horizon: jump the wheel
      // to the earliest overflow event and re-home the horizon there.
      cur_ = at(overflow_.front()).time;
      refill_from_overflow();
      continue;
    }
    if (l0_size_ != 0) {
      const std::uint32_t slot = next_occupied_slot(
          static_cast<std::uint32_t>(cur_ & (kL0Slots - 1)));
      if (slot != kNil) {
        Bucket& bucket = l0_[slot];
        cur_ = at(bucket.head).time;
        tick_ = bucket;
        bucket.head = bucket.tail = kNil;
        l0_bits_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        tick_active_ = true;
        return;
      }
    }
    // Current window exhausted; hop straight to the next boundary.
    cur_ = (cur_ | (kL0Slots - 1)) + 1;
    cascade();
  }
}

bool EventQueue::pop(SimEvent& out) {
  SimEvent* event = pop_next();
  if (event == nullptr) return false;
  out = *event;
  recycle(pending_);
  pending_ = kNil;
  return true;
}

}  // namespace drsm::sim
