// Zero-allocation event scheduling for the discrete-event simulator.
//
// The simulator's previous scheduler pushed one heap-allocated
// std::function closure per event through a std::priority_queue — ~15
// allocations and ~1 KB of churn per simulated operation.  This header
// replaces it with
//
//  * SimEvent — a POD tagged-union record covering every closure the
//    simulator ever scheduled (message delivery, message processing,
//    operation start);
//  * EventQueue — a slab/free-list arena of SimEvent records scheduled
//    through a two-level bucketed time wheel (1024 one-tick slots under
//    64 slots of 1024 ticks) with a sorted binary-heap fallback for
//    events beyond the ~65k-tick horizon.  Pop order is exactly the old
//    priority queue's (time, then schedule order), so single-run
//    simulation results are bit-identical — enforced by
//    tests/sim_determinism_test.cc, which runs the wheel against the
//    kBinaryHeap reference mode event-for-event;
//  * RingQueue — a flat power-of-two ring buffer replacing the per-node
//    std::deque message queues.
//
// Steady state allocates nothing: popped records return to a free list,
// ring buffers grow to the high-water mark and stay there.  The arena
// footprint is published as the sim.alloc_bytes metric.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "fsm/token.h"
#include "support/error.h"
#include "support/types.h"

namespace drsm::sim {

/// What a scheduled event does when its time comes.  These three cover
/// every closure the simulator used to allocate.
enum class SimEventType : std::uint8_t {
  kDeliver,  // enqueue msg at node's distributed queue (msg_id != 0 when
             // the delivery must emit a kMsgRecv trace event)
  kProcess,  // node finishes processing msg: dispatch to its machine
  kStartOp,  // node's think time expired: issue (op, object)
};

/// One scheduled occurrence.  POD: records live in the EventQueue arena
/// and are recycled through a free list, never individually allocated.
struct SimEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;     // schedule order, the tie-breaker
  std::uint64_t msg_id = 0;  // kDeliver: trace pairing id; 0 = untraced
  std::uint32_t link = 0;    // intrusive bucket/free-list link (internal)
  SimEventType type = SimEventType::kDeliver;
  fsm::OpKind op = fsm::OpKind::kRead;  // kStartOp payload
  NodeId node = 0;                      // acting/destination node
  ObjectId object = 0;                  // kStartOp payload
  fsm::Message msg;                     // kDeliver/kProcess payload
};

/// Scheduling structure selector.  kTimeWheel is the production path;
/// kBinaryHeap is an order-isomorphic reference (a (time, seq) min-heap,
/// exactly the old std::priority_queue semantics) kept for determinism
/// tests and as the sorted fallback the wheel uses internally for events
/// beyond its horizon.
enum class SchedulerKind : std::uint8_t { kTimeWheel, kBinaryHeap };

/// Pending-event set ordered by (time, seq).  Single-threaded; time may
/// only move forward (events never schedule before the last popped time).
class EventQueue {
 public:
  explicit EventQueue(SchedulerKind kind = SchedulerKind::kTimeWheel);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Allocates a record from the arena, stamps (time, next seq) and files
  /// it.  The caller fills the payload fields through the returned
  /// reference (placement depends only on time, so filling after
  /// insertion is safe).  `time` must be >= the last popped time.
  SimEvent& schedule(SimTime time);

  /// Re-files the record handed out by the last pop_next() as a fresh
  /// event at `time`, instead of recycling it: the record keeps its
  /// payload fields and receives the same (time, seq) stamp schedule()
  /// would have produced, so the pop order is exactly as if the caller
  /// had scheduled a copy — minus the arena round trip and the payload
  /// copy.  Requires an outstanding pop_next() record (checked); the
  /// returned reference is that record.
  SimEvent& refile_pending(SimTime time);

  /// Copies the earliest pending event into `out` and recycles its
  /// record.  Returns false when no events are pending.
  bool pop(SimEvent& out);

  /// Zero-copy pop: returns the earliest pending event in place, or
  /// nullptr when none are pending.  The record stays valid until the
  /// next pop()/pop_next() call (it is recycled then), so the caller may
  /// schedule new events while holding the pointer.  Pop order is
  /// identical to pop().
  SimEvent* pop_next();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // -- instrumentation (the sim.events / sim.alloc_bytes metrics) ----------
  /// Total events ever scheduled.
  std::uint64_t scheduled() const { return seq_; }
  /// Bytes held by the arena slabs and the overflow heap's index vector.
  std::size_t arena_bytes() const {
    return blocks_.size() * kBlockEvents * sizeof(SimEvent) +
           overflow_.capacity() * sizeof(std::uint32_t);
  }
  std::size_t arena_blocks() const { return blocks_.size(); }
  /// High-water mark of simultaneously pending events.
  std::size_t peak_pending() const { return peak_pending_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kBlockEvents = 1024;  // records per slab
  static constexpr unsigned kL0Bits = 10;
  static constexpr SimTime kL0Slots = SimTime{1} << kL0Bits;  // 1-tick slots
  static constexpr unsigned kL1Bits = 6;
  static constexpr SimTime kL1Slots = SimTime{1} << kL1Bits;  // kL0Slots-wide

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  SimEvent& at(std::uint32_t index) {
    return blocks_[index / kBlockEvents][index % kBlockEvents];
  }
  const SimEvent& at(std::uint32_t index) const {
    return blocks_[index / kBlockEvents][index % kBlockEvents];
  }

  // The per-event path — allocation, filing, tick advance and pop — is
  // defined inline below the class: the simulator's event loop calls
  // these a handful of times per simulated event, and keeping them
  // header-visible lets that loop inline them without LTO.
  std::uint32_t alloc();
  void recycle(std::uint32_t index);
  /// Common tail of schedule()/refile_pending(): stamp (time, next seq)
  /// on `index` and file it.
  SimEvent& file_fresh(std::uint32_t index, SimTime time);

  void bucket_append(Bucket& bucket, std::uint32_t index);
  /// Seq-sorted insertion into the one-tick L0 slot for the event's time.
  void l0_insert(std::uint32_t index);
  /// Files an event into L0/L1/overflow according to its time.
  void wheel_insert(std::uint32_t index);
  /// Allocates a fresh slab when the bump pointer exhausts the last one.
  std::uint32_t alloc_slow();
  /// Crossing into a new L0 window: spill the L1 slot covering it into
  /// L0, then pull newly in-horizon overflow events into the wheel.
  void cascade();
  void refill_from_overflow();
  /// First occupied L0 slot index >= `from` (kNil when the rest of the
  /// current window is empty), via the occupancy bitmap.
  std::uint32_t next_occupied_slot(std::uint32_t from) const;
  /// Moves the wheel to the next pending tick and drains that tick's
  /// whole L0 slot into the tick bucket.  Requires pending wheel events.
  void advance_tick();

  bool heap_later(std::uint32_t a, std::uint32_t b) const;
  void heap_push(std::uint32_t index);
  std::uint32_t heap_pop();

  SchedulerKind kind_;
  std::vector<std::unique_ptr<SimEvent[]>> blocks_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t bump_ = 0;  // used records in the newest slab

  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_pending_ = 0;

  SimTime cur_ = 0;  // last popped time; the wheel cursor
  std::size_t l0_size_ = 0;
  std::size_t wheel_size_ = 0;  // events filed in L0 + L1 + tick bucket
  std::array<Bucket, kL0Slots> l0_;
  std::array<Bucket, kL1Slots> l1_;
  std::vector<std::uint32_t> overflow_;  // (time, seq) min-heap of indices

  // Batched-tick drain state.  The tick bucket caches the L0 slot of the
  // tick currently being popped: advance_tick() moves a whole slot here
  // in one motion, same-tick schedules append directly (their seq is the
  // highest yet, so FIFO append preserves (time, seq) order), and pops
  // take the head without re-touching the wheel.  `pending_` is the
  // record handed out by the last pop_next(), recycled on the next pop.
  Bucket tick_;
  bool tick_active_ = false;
  std::uint32_t pending_ = kNil;
  // One bit per L0 slot: set when the slot's list is non-empty.  Lets the
  // wheel jump to the next pending tick instead of scanning empty slots
  // one tick at a time (think times average ~64 ticks, so the old scan
  // visited ~64 empty slots per operation).
  std::array<std::uint64_t, kL0Slots / 64> l0_bits_{};
};

// -- inline per-event path ---------------------------------------------------

inline std::uint32_t EventQueue::alloc() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = at(index).link;
    return index;
  }
  return alloc_slow();
}

inline void EventQueue::recycle(std::uint32_t index) {
  at(index).link = free_head_;
  free_head_ = index;
}

inline void EventQueue::bucket_append(Bucket& bucket, std::uint32_t index) {
  at(index).link = kNil;
  if (bucket.head == kNil) {
    bucket.head = bucket.tail = index;
  } else {
    at(bucket.tail).link = index;
    bucket.tail = index;
  }
}

inline void EventQueue::l0_insert(std::uint32_t index) {
  // An L0 slot holds a single tick, so its list is the final pop order
  // for that time and must stay seq-sorted.  Direct schedules arrive in
  // ascending seq (append fast path); events migrating in from L1 or the
  // overflow heap may carry older seqs — they were scheduled earlier,
  // toward a then-distant time — and walk to their sorted spot.
  const std::uint32_t slot =
      static_cast<std::uint32_t>(at(index).time & (kL0Slots - 1));
  l0_bits_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  Bucket& bucket = l0_[slot];
  const std::uint64_t seq = at(index).seq;
  if (bucket.head == kNil || at(bucket.tail).seq < seq) {
    bucket_append(bucket, index);
  } else if (seq < at(bucket.head).seq) {
    at(index).link = bucket.head;
    bucket.head = index;
  } else {
    std::uint32_t prev = bucket.head;
    while (at(prev).link != kNil && at(at(prev).link).seq < seq)
      prev = at(prev).link;
    at(index).link = at(prev).link;
    at(prev).link = index;
  }
  ++l0_size_;
}

inline void EventQueue::wheel_insert(std::uint32_t index) {
  const SimTime time = at(index).time;
  if (time - cur_ < kL0Slots) {
    l0_insert(index);
    ++wheel_size_;
  } else if ((time >> kL0Bits) - (cur_ >> kL0Bits) < kL1Slots) {
    // L1 lists need no ordering discipline: cascade() re-files each event
    // through the seq-sorting l0_insert when its window opens.
    bucket_append(l1_[(time >> kL0Bits) & (kL1Slots - 1)], index);
    ++wheel_size_;
  } else {
    heap_push(index);
  }
}

inline SimEvent& EventQueue::file_fresh(std::uint32_t index, SimTime time) {
  SimEvent& event = at(index);
  event.time = time;
  event.seq = ++seq_;
  event.msg_id = 0;
  ++size_;
  peak_pending_ = std::max(peak_pending_, size_);
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_push(index);
  } else if (tick_active_ && time == cur_) {
    // Same-tick schedule while that tick is being drained: this record's
    // seq is the highest yet, so a FIFO append onto the live tick bucket
    // preserves (time, seq) order without touching the wheel.
    bucket_append(tick_, index);
    ++l0_size_;
    ++wheel_size_;
  } else {
    wheel_insert(index);
  }
  return event;
}

inline SimEvent& EventQueue::schedule(SimTime time) {
  DRSM_CHECK(time >= cur_, "EventQueue: scheduling into the past");
  return file_fresh(alloc(), time);
}

inline SimEvent& EventQueue::refile_pending(SimTime time) {
  DRSM_CHECK(pending_ != kNil, "EventQueue: no outstanding popped record");
  DRSM_CHECK(time >= cur_, "EventQueue: scheduling into the past");
  const std::uint32_t index = pending_;
  pending_ = kNil;
  return file_fresh(index, time);
}

inline std::uint32_t EventQueue::next_occupied_slot(std::uint32_t from) const {
  std::uint32_t word = from >> 6;
  std::uint64_t bits = l0_bits_[word] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0)
      return (word << 6) + static_cast<std::uint32_t>(std::countr_zero(bits));
    if (++word == l0_bits_.size()) return kNil;
    bits = l0_bits_[word];
  }
}

inline SimEvent* EventQueue::pop_next() {
  if (pending_ != kNil) {
    recycle(pending_);
    pending_ = kNil;
  }
  if (size_ == 0) return nullptr;
  std::uint32_t index;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    index = heap_pop();
    cur_ = at(index).time;
  } else {
    if (tick_.head == kNil) advance_tick();
    index = tick_.head;
    tick_.head = at(index).link;
    if (tick_.head == kNil) tick_.tail = kNil;
    --l0_size_;
    --wheel_size_;
  }
  --size_;
  pending_ = index;
  return &at(index);
}

/// Flat FIFO over a power-of-two buffer; replaces std::deque for the
/// per-node message queues.  Grows by doubling (to the run's high-water
/// mark) and never shrinks, so steady state allocates nothing.
template <typename T>
class RingQueue {
 public:
  bool empty() const { return head_ == tail_; }
  std::size_t size() const { return tail_ - head_; }

  void push_back(const T& value) {
    if (tail_ - head_ == buffer_.size()) grow();
    buffer_[tail_++ & mask_] = value;
  }

  T& front() {
    DRSM_CHECK(head_ != tail_, "RingQueue::front on empty queue");
    return buffer_[head_ & mask_];
  }
  const T& front() const {
    DRSM_CHECK(head_ != tail_, "RingQueue::front on empty queue");
    return buffer_[head_ & mask_];
  }

  void pop_front() {
    DRSM_CHECK(head_ != tail_, "RingQueue::pop_front on empty queue");
    ++head_;
  }

  std::size_t capacity_bytes() const { return buffer_.size() * sizeof(T); }

 private:
  void grow() {
    const std::size_t capacity =
        buffer_.empty() ? kInitialCapacity : buffer_.size() * 2;
    std::vector<T> grown(capacity);
    const std::size_t mask = capacity - 1;
    for (std::size_t i = head_; i != tail_; ++i)
      grown[i & mask] = std::move(buffer_[i & mask_]);
    buffer_ = std::move(grown);
    mask_ = mask;
  }

  static constexpr std::size_t kInitialCapacity = 16;
  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  // Monotone positions; index = position & mask_.  size_t wraparound is
  // harmless (differences and masked indices stay correct).
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace drsm::sim
