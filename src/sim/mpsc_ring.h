// Lock-free bounded MPSC channel: the one concurrency primitive shared by
// every true-concurrency runtime in the repo (the threaded runtime's node
// inboxes and the sharded runtime's request/grant rings).
//
// Layout and algorithm are the bounded sequence-number ring (Vyukov's
// design) specialized to a single consumer:
//
//  * each slot carries a sequence number; a producer claims slot `pos` by
//    CASing the tail from pos to pos+1 once slot.seq == pos, writes the
//    value, then publishes with slot.seq = pos+1 (release);
//  * the single consumer owns the head cursor outright (no atomics on the
//    pop path beyond the per-slot acquire/release pair) and frees a slot
//    with slot.seq = pos+capacity;
//  * head and tail live on separate cache lines so producers and the
//    consumer never false-share.
//
// Per-producer FIFO follows from slot claiming: a producer's second push
// claims a strictly later slot than its first, and the consumer drains in
// slot order.  (This is what preserves each session's per-object program
// order through a shard's request ring.)
//
// Blocking is layered on top with an eventcount (EventGate): consumers
// park on empty, producers park on full, and both sides re-check their
// condition between announcing themselves and sleeping, so wakeups are
// never lost.  std::atomic::wait/notify backs the actual sleep (a futex
// on Linux) — no mutex or condition variable anywhere.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

namespace drsm::sim {

/// Eventcount: a lost-wakeup-free park/unpark gate.
///
/// Waiter protocol:
///   ticket = gate.prepare_wait();
///   if (condition_now_true) gate.cancel_wait(); else gate.wait(ticket);
/// Waker protocol, after making the condition true:
///   gate.notify();        // cheap when nobody is parked
///
/// The waker's seq_cst fence in notify() pairs with the waiter's fence in
/// prepare_wait(): either the waker observes the announced waiter (and
/// bumps the sequence, which wait() re-checks before sleeping), or the
/// waiter's re-check observes the waker's state change.  poke() bumps
/// unconditionally — the shutdown path uses it to dislodge any sleeper
/// without having to win the waiters_ race.
class EventGate {
 public:
  std::uint32_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return seq_.load(std::memory_order_relaxed);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_relaxed); }

  void wait(std::uint32_t ticket) {
    seq_.wait(ticket, std::memory_order_acquire);
    waiters_.fetch_sub(1, std::memory_order_relaxed);
  }

  void notify() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) == 0) return;
    seq_.fetch_add(1, std::memory_order_release);
    seq_.notify_all();
  }

  void poke() {
    seq_.fetch_add(1, std::memory_order_release);
    seq_.notify_all();
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint32_t> waiters_{0};
};

template <class T>
class MpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 4).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 4;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer: attempts to enqueue.  Returns false when the ring is full.
  /// Wakes a parked consumer unless `silent` (batch producers wake once at
  /// the end of the batch via wake_consumer()).
  bool try_push(const T& value, bool silent = false) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.seq.store(pos + 1, std::memory_order_release);
          if (!silent) not_empty_.notify();
          return true;
        }
        // CAS failure reloaded pos; retry with the new claim point.
      } else if (dif < 0) {
        full_stalls_.fetch_add(1, std::memory_order_relaxed);
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Producer: enqueue, parking on the space gate while the ring is full.
  /// Only safe where the consumer is guaranteed to keep draining (it must
  /// not itself block pushing into a ring this producer drains — see the
  /// capacity notes at each call site).
  void push(const T& value) {
    while (!try_push(value)) {
      const std::uint32_t ticket = not_full_.prepare_wait();
      if (has_space_hint()) {
        not_full_.cancel_wait();
        continue;
      }
      not_full_.wait(ticket);
    }
  }

  /// Consumer only: drains up to `max` values into `out`.  Returns the
  /// count; wakes producers parked on a full ring when slots were freed.
  std::size_t pop_batch(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      Slot& slot = slots_[head_ & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      if (seq != head_ + 1) break;  // not yet published
      out[n++] = slot.value;
      slot.seq.store(head_ + capacity_, std::memory_order_release);
      ++head_;
    }
    if (n != 0) not_full_.notify();
    return n;
  }

  /// Consumer only: true when the next slot holds a published value.
  bool can_pop() const {
    const Slot& slot = slots_[head_ & mask_];
    return slot.seq.load(std::memory_order_acquire) == head_ + 1;
  }

  /// Consumer parking (see EventGate for the protocol).  The caller
  /// re-checks its own wake conditions (data, stop flags) after wait().
  std::uint32_t prepare_wait() { return not_empty_.prepare_wait(); }
  void cancel_wait() { not_empty_.cancel_wait(); }
  void wait(std::uint32_t ticket) { not_empty_.wait(ticket); }

  /// Wakes a parked consumer (batched producers, shutdown paths).
  void wake_consumer() { not_empty_.notify(); }
  /// Unconditional consumer wake for shutdown: dislodges a sleeper even if
  /// it is between prepare_wait() and wait().
  void poke() { not_empty_.poke(); }

  /// Times a producer found the ring full (backpressure events).
  std::uint64_t full_stalls() const {
    return full_stalls_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq;
    T value;
  };

  bool has_space_hint() const {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    const Slot& slot = slots_[pos & mask_];
    return static_cast<std::int64_t>(
               slot.seq.load(std::memory_order_acquire)) -
               static_cast<std::int64_t>(pos) >=
           0;
  }

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;

  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producers
  alignas(64) std::uint64_t head_ = 0;              // consumer-owned
  alignas(64) EventGate not_empty_;                 // consumer parks here
  EventGate not_full_;                              // producers park here
  std::atomic<std::uint64_t> full_stalls_{0};
};

/// Mutex+deque reference queue with the same surface, for the channel
/// differential tests and the before/after line in bench_runtime: this is
/// the design the threaded runtime's per-node inboxes used before the
/// MPSC ring replaced them.
template <class T>
class MutexQueue {
 public:
  explicit MutexQueue(std::size_t capacity) : capacity_(capacity) {}

  bool try_push(const T& value, bool silent = false) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.size() >= capacity_) return false;
      items_.push_back(value);
    }
    if (!silent) cv_.notify_one();
    return true;
  }

  std::size_t pop_batch(T* out, std::size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    while (n < max && !items_.empty()) {
      out[n++] = items_.front();
      items_.pop_front();
    }
    return n;
  }

 private:
  std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace drsm::sim
