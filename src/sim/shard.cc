#include "sim/shard.h"

#include <algorithm>

#include "support/error.h"

namespace drsm::sim {

/// Forwards tap events with the per-runtime object id 0 replaced by the
/// hosted object's global id.  One per hosted object, all pointing at the
/// shard's single tap; touched only by the shard thread.
class SequencerShard::Relabel final : public CoherenceTap {
 public:
  Relabel(CoherenceTap* target, ObjectId object)
      : target_(target), object_(object) {}

  void on_write_issue(double time, NodeId node, ObjectId /*object*/,
                      std::uint64_t value) override {
    target_->on_write_issue(time, node, object_, value);
  }
  void on_commit(double time, NodeId node, ObjectId /*object*/,
                 std::uint64_t version, std::uint64_t value) override {
    target_->on_commit(time, node, object_, version, value);
  }
  void on_read(double time, NodeId node, ObjectId /*object*/,
               std::uint64_t value, std::uint64_t version) override {
    target_->on_read(time, node, object_, value, version);
  }

 private:
  CoherenceTap* target_;
  ObjectId object_;
};

namespace {

std::vector<NodeId> full_roster(std::size_t num_clients) {
  std::vector<NodeId> roster(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i)
    roster[i] = static_cast<NodeId>(i);
  return roster;
}

}  // namespace

SequencerShard::SequencerShard(const Options& options)
    : options_(options), ring_(options.ring_capacity) {
  DRSM_CHECK(!options_.objects.empty(), "shard must own at least one object");
  SystemConfig config = options_.config;
  config.num_objects = 1;  // each runtime hosts one object
  ObjectId max_object = 0;
  for (ObjectId object : options_.objects)
    max_object = std::max(max_object, object);
  local_of_.assign(max_object + 1, kNoNode);
  runtimes_.reserve(options_.objects.size());
  taps_.reserve(options_.objects.size());
  for (std::size_t i = 0; i < options_.objects.size(); ++i) {
    const ObjectId object = options_.objects[i];
    DRSM_CHECK(local_of_[object] == kNoNode, "object assigned twice");
    local_of_[object] = static_cast<ObjectId>(i);
    runtimes_.push_back(std::make_unique<SequentialRuntime>(
        options_.protocol, config, full_roster(config.num_clients)));
    if (options_.tap != nullptr) {
      taps_.push_back(std::make_unique<Relabel>(options_.tap, object));
      runtimes_.back()->set_coherence_tap(taps_.back().get());
    }
  }
}

SequencerShard::~SequencerShard() { stop(); }

std::size_t SequencerShard::local_index(ObjectId object) const {
  DRSM_CHECK(object < local_of_.size() && local_of_[object] != kNoNode,
             "object not hosted by this shard");
  return local_of_[object];
}

void SequencerShard::start() {
  DRSM_CHECK(!thread_.joinable(), "shard already started");
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void SequencerShard::stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  ring_.poke();
  thread_.join();
  stats_.ring_full_stalls = ring_.full_stalls();
}

void SequencerShard::handle(const ShardRequest& request) {
  if (request.kind == ShardRequest::Kind::kMigrate) {
    SequentialRuntime& runtime = *runtimes_[local_index(request.object)];
    if (failed_.load(std::memory_order_relaxed) ||
        runtime.protocol() == request.migrate_to)
      return;
    try {
      const OpResult seed = runtime.migrate(request.migrate_to);
      ++stats_.migrations;
      stats_.cost += seed.cost;
      stats_.messages += seed.messages;
    } catch (const Error& e) {
      if (!failed_.exchange(true, std::memory_order_acq_rel))
        error_ = e.what();
    }
    return;
  }
  ShardGrant grant;
  grant.object = request.object;
  grant.op = request.op;
  grant.ticket = request.ticket;
  grant.issue_ns = request.issue_ns;
  SequentialRuntime& runtime = *runtimes_[local_index(request.object)];
  if (!failed_.load(std::memory_order_relaxed)) {
    try {
      const OpResult result =
          runtime.execute(request.node, request.op, request.value);
      grant.cost = result.cost;
      grant.value = request.op == fsm::OpKind::kRead ? result.read_value
                                                     : request.value;
      grant.version = request.op == fsm::OpKind::kRead
                          ? result.read_version
                          : runtime.latest_version();
      stats_.cost += result.cost;
      stats_.messages += result.messages;
    } catch (const Error& e) {
      // Record the first failure but keep granting, so sessions blocked on
      // their windows unwind instead of hanging; they re-raise from
      // failed()/error() on drain.
      if (!failed_.exchange(true, std::memory_order_acq_rel))
        error_ = e.what();
    }
  }
  ++stats_.ops;
  // The session window bounds grant-ring occupancy, so this only spins if
  // a session consumed grants without decrementing its window (a bug).
  while (!request.reply->try_push(grant, /*silent=*/true))
    std::this_thread::yield();
}

void SequencerShard::run() {
  std::vector<ShardRequest> batch(options_.max_batch);
  std::vector<EventGate*> dirty;
  dirty.reserve(16);
  std::size_t idle_spins_left = options_.idle_spins;
  for (;;) {
    const std::size_t n = ring_.pop_batch(batch.data(), options_.max_batch);
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire)) {
        if (!ring_.can_pop()) break;  // fully drained
        continue;
      }
      if (idle_spins_left > 0) {
        --idle_spins_left;
        ++stats_.idle_yields;
        std::this_thread::yield();
        continue;
      }
      const std::uint32_t ticket = ring_.prepare_wait();
      if (ring_.can_pop() || stop_.load(std::memory_order_acquire)) {
        ring_.cancel_wait();
        continue;
      }
      ++stats_.parks;
      ring_.wait(ticket);
      continue;
    }
    dirty.clear();
    for (std::size_t i = 0; i < n; ++i) {
      handle(batch[i]);
      EventGate* gate = batch[i].reply_gate;
      if (gate != nullptr &&
          std::find(dirty.begin(), dirty.end(), gate) == dirty.end())
        dirty.push_back(gate);
    }
    // One wake per session per batch, after all its grants are published.
    for (EventGate* gate : dirty) gate->notify();
    ++stats_.batches;
    stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, n);
    idle_spins_left = options_.idle_spins;  // fresh budget after real work
  }
}

std::uint64_t SequencerShard::object_version(ObjectId object) const {
  return runtimes_[local_index(object)]->latest_version();
}

const char* SequencerShard::state_name(ObjectId object, NodeId node) const {
  return runtimes_[local_index(object)]->state_name(node);
}

protocols::ProtocolKind SequencerShard::object_protocol(
    ObjectId object) const {
  return runtimes_[local_index(object)]->protocol();
}

}  // namespace drsm::sim
