// Discrete-event simulator of the full N+1-node message-passing system —
// the C++ counterpart of the paper's multitasking Ada simulator
// (Section 5.2).
//
// Unlike SequentialRuntime, operations from different nodes overlap in
// time here: messages travel through FIFO channels with latency, each node
// processes one message at a time from its two queues (distributed queue
// first; the local queue can be disabled by a blocked distributed
// operation), and the application process at each node issues its next
// operation only after the previous one completes ("closed loop").  The
// divergence between this simulator's measured average communication cost
// and the analytic prediction is exactly what the paper's Table 7 reports
// (< +-8 %).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "fsm/mealy.h"
#include "obs/metrics.h"
#include "obs/quantile.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "sim/coherence_tap.h"
#include "sim/config.h"
#include "sim/event_queue.h"
#include "support/rng.h"

namespace drsm::sim {

/// Event-loop dispatch selector — see SimOptions::dispatch.
enum class DispatchKind : std::uint8_t { kDenseTable, kClassicSwitch };

/// Supplies each node's next application operation.  Implementations own
/// their randomness (see src/workload).
class WorkloadDriver {
 public:
  struct Op {
    ObjectId object = 0;
    fsm::OpKind kind = fsm::OpKind::kRead;
    SimTime think_time = 0;  // delay before the request is issued
  };

  virtual ~WorkloadDriver() = default;

  /// Next operation for `node`, or nullopt when the node stops issuing.
  virtual std::optional<Op> next_op(NodeId node) = 0;
};

/// Aggregate measurements of one simulation run.
struct SimStats {
  Cost measured_cost = 0.0;     // cost accumulated after warmup
  std::size_t measured_ops = 0; // completed operations after warmup
  Cost warmup_cost = 0.0;
  std::size_t warmup_ops = 0;
  std::size_t reads = 0;   // post-warmup
  std::size_t writes = 0;  // post-warmup
  std::size_t messages = 0;
  SimTime end_time = 0;

  // Operation response times (issue -> completion), post-warmup.  The
  // paper's metric is message cost; latency is the simulator's natural
  // complement (blocking operations wait for sequencer round trips,
  // fire-and-forget ones do not).
  double latency_sum = 0.0;
  SimTime latency_max = 0;
  double read_latency_sum = 0.0;
  double write_latency_sum = 0.0;

  /// Post-warmup latency distribution (default exponential buckets),
  /// kept for bucket-shaped readouts and merging with fixed bounds.
  obs::Histogram latency_histogram;

  /// Post-warmup latency quantile sketch (Greenwald–Khanna): the source
  /// of the p50/p90/p99 fields in BENCH_*.json reports.  Unlike the
  /// histogram's interpolated bucket percentiles, queries return actual
  /// observed latencies (so a zero-heavy distribution reports p50 = 0,
  /// not a fraction interpolated across the first bucket).
  obs::Quantile latency_quantiles;

  double mean_latency() const {
    return measured_ops == 0 ? 0.0
                             : latency_sum /
                                   static_cast<double>(measured_ops);
  }
  double mean_read_latency() const {
    return reads == 0 ? 0.0 : read_latency_sum / static_cast<double>(reads);
  }
  double mean_write_latency() const {
    return writes == 0 ? 0.0
                       : write_latency_sum / static_cast<double>(writes);
  }

  /// Inter-node messages by token type over the whole run (the protocol's
  /// "message mix"): e.g. for Write-Through, kInval counts track the
  /// invalidation broadcasts of traces tr3/tr4/tr6.
  std::map<fsm::MsgType, std::size_t> message_mix;

  /// Communication cost attributed to each node's operations (indexed by
  /// the message token's operation-initiator, the paper's five-tuple
  /// field) — "who pays", over the whole run.
  std::vector<Cost> cost_by_initiator;

  /// Communication cost per shared object (the token's object-name field)
  /// over the whole run — which objects are hot.
  std::vector<Cost> cost_by_object;

  /// Messages handled by each node's protocol processor over the whole
  /// run.  With a non-zero per-message processing time this measures where
  /// the serialization bottleneck sits: utilization(node) =
  /// handled * processing_time / end_time.  The fixed-sequencer protocols
  /// concentrate this on node N; Berkeley spreads it with ownership.
  std::vector<std::size_t> handled_by_node;

  double utilization(NodeId node, SimTime processing_time) const {
    if (end_time == 0 || node >= handled_by_node.size()) return 0.0;
    return static_cast<double>(handled_by_node[node]) *
           static_cast<double>(processing_time) /
           static_cast<double>(end_time);
  }

  /// Steady-state average communication cost per operation (per shared
  /// object when divided by the object count externally; the paper's acc
  /// is per operation and per object with uniform access, which coincide).
  double acc() const {
    return measured_ops == 0 ? 0.0
                             : measured_cost /
                                   static_cast<double>(measured_ops);
  }
};

struct SimOptions {
  LatencyModel latency;
  std::size_t max_ops = 2000;   // total completed operations, incl. warmup
  std::size_t warmup_ops = 500; // the paper's neglected transient
  std::uint64_t seed = 1;
  bool check_coherence = true;  // per-node version monotonicity

  /// Upper bound on in-flight messages per directed (src, dst) channel;
  /// 0 = unbounded (the default, and the zero-overhead path: depths are
  /// only tracked when a bound is set).  Exceeding the bound trips a
  /// DRSM_CHECK — the model checker explores under the same channel bound,
  /// so a bounded simulator run stays inside the verified state space.
  std::size_t max_channel_depth = 0;

  /// Event scheduling structure.  kTimeWheel is the fast production path;
  /// kBinaryHeap is the order-isomorphic reference the determinism tests
  /// compare against.  Both pop in (time, schedule order), so results are
  /// identical either way.
  SchedulerKind scheduler = SchedulerKind::kTimeWheel;

  /// Event-loop dispatch structure.  kDenseTable (the production path)
  /// drives a flat function-pointer table indexed by SimEventType over
  /// the queue's zero-copy batched-tick pop; kClassicSwitch is the
  /// per-event copy-out switch loop kept as the differential reference.
  /// Both execute handlers in the same (time, seq) order, so simulated
  /// results are bit-identical either way — enforced on all eight
  /// protocols by tests/sim_determinism_test.cc.
  DispatchKind dispatch = DispatchKind::kDenseTable;
};

/// Observer invoked for every inter-node message (used by the trace
/// inspector example and by tests).  Implemented on top of the structured
/// event stream: the callback is an EventSink adapter that reconstructs
/// the fsm::Message from each kMsgSend trace event.
using MessageObserver = std::function<void(
    SimTime time, NodeId src, NodeId dst, const fsm::Message& msg)>;

class EventSimulator {
 public:
  EventSimulator(protocols::ProtocolKind kind, const SystemConfig& config,
                 const SimOptions& options);
  ~EventSimulator();

  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  void set_observer(MessageObserver observer);

  /// Attaches a structured trace sink (typically an obs::TraceRecorder):
  /// every message send/recv, queue enable/disable, operation
  /// issue/completion and copy-state transition is delivered to it.  With
  /// no sink attached the instrumentation is a single null check per
  /// event site (the zero-overhead path measured by bench_micro).  Pass
  /// nullptr to detach.  Composes with set_observer.
  void set_sink(obs::EventSink* sink);

  /// Attaches a metrics registry: the run publishes message/operation
  /// counters, the message mix, acc/latency summaries, and time series of
  /// the sequencer's queue depth and utilization.  Metric names are
  /// listed in docs/OBSERVABILITY.md.  Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Attaches a coherence tap (typically the check::CoherenceOracle):
  /// write issues, write serializations and read returns are forwarded to
  /// it.  With no tap attached each site is a single null check.  Pass
  /// nullptr to detach.
  void set_coherence_tap(CoherenceTap* tap);

  /// Runs until max_ops operations completed (or the driver stops issuing
  /// everywhere and the network drains).
  SimStats run(WorkloadDriver& driver);

  /// Copy-state name of (node, object) after a run, for tests.
  const char* state_name(NodeId node, ObjectId object) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace drsm::sim
