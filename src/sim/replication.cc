#include "sim/replication.h"

#include <cmath>
#include <utility>

namespace drsm::sim {
namespace {

void add_vector(std::vector<Cost>& into, const std::vector<Cost>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0.0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

void add_vector(std::vector<std::size_t>& into,
                const std::vector<std::size_t>& from) {
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

ConfidenceInterval interval(const std::vector<double>& samples, double z) {
  ConfidenceInterval ci;
  const std::size_t n = samples.size();
  if (n == 0) return ci;
  double sum = 0.0;
  for (double s : samples) sum += s;
  ci.mean = sum / static_cast<double>(n);
  if (n < 2) return ci;
  double ss = 0.0;
  for (double s : samples) {
    const double d = s - ci.mean;
    ss += d * d;
  }
  ci.stddev = std::sqrt(ss / static_cast<double>(n - 1));
  ci.half_width = z * ci.stddev / std::sqrt(static_cast<double>(n));
  return ci;
}

}  // namespace

double z_for_confidence(double confidence) {
  // Nearest of the supported two-sided levels.
  if (confidence < 0.925) return 1.6449;  // 90 %
  if (confidence < 0.97) return 1.9600;   // 95 %
  return 2.5758;                          // 99 %
}

void merge_stats(SimStats& into, const SimStats& from) {
  into.measured_cost += from.measured_cost;
  into.measured_ops += from.measured_ops;
  into.warmup_cost += from.warmup_cost;
  into.warmup_ops += from.warmup_ops;
  into.reads += from.reads;
  into.writes += from.writes;
  into.messages += from.messages;
  into.end_time += from.end_time;
  into.latency_sum += from.latency_sum;
  into.latency_max = std::max(into.latency_max, from.latency_max);
  into.read_latency_sum += from.read_latency_sum;
  into.write_latency_sum += from.write_latency_sum;
  into.latency_histogram.merge(from.latency_histogram);
  into.latency_quantiles.merge(from.latency_quantiles);
  for (const auto& [type, count] : from.message_mix)
    into.message_mix[type] += count;
  add_vector(into.cost_by_initiator, from.cost_by_initiator);
  add_vector(into.cost_by_object, from.cost_by_object);
  add_vector(into.handled_by_node, from.handled_by_node);
}

ReplicatedStats run_replications(protocols::ProtocolKind kind,
                                 const SystemConfig& config,
                                 const SimOptions& sim,
                                 const DriverFactory& make_driver,
                                 const ReplicationOptions& options) {
  const std::size_t reps = options.replications;

  // Per-replication result slots, filled in parallel, merged in order.
  struct Rep {
    SimStats stats;
    std::unique_ptr<obs::MetricsRegistry> metrics;
  };
  std::vector<Rep> slots(reps);

  auto run_one = [&](std::size_t r) {
    SimOptions o = sim;
    o.seed = exec::task_seed(options.base_seed, r);
    Rep& slot = slots[r];
    if (options.metrics != nullptr)
      slot.metrics = std::make_unique<obs::MetricsRegistry>();
    EventSimulator simulator(kind, config, o);
    if (slot.metrics) simulator.set_metrics(slot.metrics.get());
    auto driver = make_driver(o.seed, r);
    slot.stats = simulator.run(*driver);
  };

  if (options.runner != nullptr) {
    // The task seed above is a pure function of (options.base_seed, r);
    // the runner's own SweepTask seed is deliberately unused so an
    // externally configured runner cannot perturb results.
    options.runner->for_each(reps,
                             [&](const exec::SweepTask& t) { run_one(t.index); });
  } else {
    exec::SweepRunner runner(
        {.threads = options.threads, .base_seed = options.base_seed});
    runner.for_each(reps,
                    [&](const exec::SweepTask& t) { run_one(t.index); });
  }

  ReplicatedStats out;
  out.replications = reps;
  const double z = z_for_confidence(options.confidence);
  std::vector<double> latency_samples;
  latency_samples.reserve(reps);
  out.acc_samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    merge_stats(out.merged, slots[r].stats);
    out.acc_samples.push_back(slots[r].stats.acc());
    latency_samples.push_back(slots[r].stats.mean_latency());
    if (options.metrics != nullptr && slots[r].metrics)
      options.metrics->merge(*slots[r].metrics);
  }
  out.acc = interval(out.acc_samples, z);
  out.mean_latency = interval(latency_samples, z);

  if (options.metrics != nullptr) {
    options.metrics->counter("replication.runs").inc(reps);
    options.metrics->gauge("replication.acc_mean").set(out.acc.mean);
    options.metrics->gauge("replication.acc_ci_half_width")
        .set(out.acc.half_width);
    options.metrics->gauge("replication.latency_ci_half_width")
        .set(out.mean_latency.half_width);
  }
  return out;
}

}  // namespace drsm::sim
