// Sharded sequencers: the true-concurrency execution substrate behind
// dsm::ConcurrentSharedMemory.
//
// Objects are partitioned across S shards by ObjectId (shard_of); each
// shard owns one SequentialRuntime per object it hosts and runs a batched
// event loop on a dedicated thread:
//
//   client threads ──MpscRing<ShardRequest>──▶ shard loop ──▶ per-object
//   SequentialRuntime::execute (atomic, run-to-quiescence) ──▶
//   MpscRing<ShardGrant> back to the issuing session.
//
// Each wakeup drains up to max_batch requests, executes them back to
// back (amortizing the park/unpark and dispatch overhead), then wakes
// every session that received grants exactly once.  Per-object operation
// order inside a shard is the request-ring order, which preserves each
// producer's program order (see mpsc_ring.h) — this is what lets the
// coherence oracle referee a live run in its strict kSequential mode, per
// object, without any cross-shard synchronization.
//
// A coherence tap attached to a shard observes all of the shard's objects
// through one sim::CoherenceTap; the shard relabels the per-runtime
// object id 0 to the global ObjectId before forwarding.  The tap is
// touched only by the shard's own thread (thread safety by confinement).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "protocols/protocol.h"
#include "sim/config.h"
#include "sim/mpsc_ring.h"
#include "sim/sequential.h"

namespace drsm::sim {

/// Which shard hosts `object` under S shards.  Modulo keeps consecutive
/// (Zipf-hot) objects on distinct shards.
inline std::size_t shard_of(ObjectId object, std::size_t num_shards) {
  return static_cast<std::size_t>(object) % num_shards;
}

struct ShardGrant {
  ObjectId object = 0;
  fsm::OpKind op = fsm::OpKind::kRead;
  std::uint64_t value = 0;    // read: value returned; write: value stored
  std::uint64_t version = 0;  // read: version returned; write: latest seq
  Cost cost = 0.0;            // communication cost of the operation
  std::uint64_t ticket = 0;   // session-local issue ticket
  std::uint64_t issue_ns = 0; // session's issue timestamp (latency)
};

using GrantRing = MpscRing<ShardGrant>;

struct ShardRequest {
  /// kOp is an application operation; kMigrate switches the object's
  /// runtime to `migrate_to` (SequentialRuntime::migrate) in ring order —
  /// requests ahead of it run under the old protocol, requests behind it
  /// under the new one, and the per-object history stays sequential across
  /// the switch.  Migrations carry no reply: `reply`/`reply_gate` stay
  /// null and no grant is published.
  enum class Kind : std::uint8_t { kOp, kMigrate };
  Kind kind = Kind::kOp;
  fsm::OpKind op = fsm::OpKind::kRead;
  NodeId node = 0;            // issuing DSM node (protocol client id)
  ObjectId object = 0;        // global object id
  std::uint64_t value = 0;    // write payload
  std::uint64_t ticket = 0;
  std::uint64_t issue_ns = 0;
  protocols::ProtocolKind migrate_to =
      protocols::ProtocolKind::kWriteThrough;  // kMigrate only
  GrantRing* reply = nullptr;       // session grant ring (never full: the
                                    // session window bounds occupancy)
  EventGate* reply_gate = nullptr;  // session park gate, woken per batch
};

/// One sequencer shard: request ring + dedicated batched event loop.
class SequencerShard {
 public:
  struct Options {
    protocols::ProtocolKind protocol =
        protocols::ProtocolKind::kWriteThrough;
    SystemConfig config;               // num_objects ignored (per-object
                                       // runtimes host one object each)
    std::vector<ObjectId> objects;     // global ids this shard owns
    std::size_t ring_capacity = 4096;  // request ring (backpressure knob)
    std::size_t max_batch = 256;       // K: requests drained per wakeup
    /// Yield-spins on an empty ring before futex-parking.  Producers are
    /// usually one scheduler quantum away from refilling the ring, so a
    /// yield is much cheaper than a park/notify round trip; only a
    /// genuinely idle shard pays the futex.
    std::size_t idle_spins = 4;
    CoherenceTap* tap = nullptr;       // live referee (optional)
  };

  explicit SequencerShard(const Options& options);
  ~SequencerShard();

  SequencerShard(const SequencerShard&) = delete;
  SequencerShard& operator=(const SequencerShard&) = delete;

  void start();
  /// Asks the loop to exit once the ring is drained, then joins.
  void stop();

  /// Producer side (any thread): false when the ring is full — the caller
  /// pumps its grant ring and retries (never parks holding work, so the
  /// shard can always drain toward it).
  bool try_submit(const ShardRequest& request) {
    return ring_.try_push(request);
  }

  /// A failed protocol invariant inside the loop (drsm::Error) stops the
  /// shard and is reported here; empty = clean.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  const std::string& error() const { return error_; }

  // -- post-join statistics (stable after stop()) ---------------------------
  struct Stats {
    std::uint64_t ops = 0;
    std::uint64_t migrations = 0;    // protocol switches executed
    Cost cost = 0.0;                 // includes migration seed-write costs
    std::uint64_t messages = 0;
    std::uint64_t batches = 0;       // non-empty wakeup drains
    std::uint64_t max_batch = 0;     // largest single drain
    std::uint64_t parks = 0;         // times the loop futex-slept on empty
    std::uint64_t idle_yields = 0;   // empty-ring yields that avoided a park
    std::uint64_t ring_full_stalls = 0;  // producer backpressure events
  };
  const Stats& stats() const { return stats_; }

  /// Latest write sequence number of a hosted object (diagnostics/tests).
  std::uint64_t object_version(ObjectId object) const;
  const char* state_name(ObjectId object, NodeId node) const;
  /// The protocol a hosted object currently runs (post-join diagnostics:
  /// reflects executed migrations, not ones still queued in the ring).
  protocols::ProtocolKind object_protocol(ObjectId object) const;

 private:
  class Relabel;

  void run();
  void handle(const ShardRequest& request);
  std::size_t local_index(ObjectId object) const;

  Options options_;
  std::vector<std::unique_ptr<SequentialRuntime>> runtimes_;  // by local idx
  std::vector<std::unique_ptr<Relabel>> taps_;                // parallel
  std::vector<ObjectId> local_of_;  // global object -> local idx (dense)

  MpscRing<ShardRequest> ring_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::string error_;
  Stats stats_;
};

}  // namespace drsm::sim
