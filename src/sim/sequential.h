// SequentialRuntime: executes shared-memory operations one at a time, each
// run to network quiescence before the next begins.
//
// This is the semantics under which the paper's analysis holds (operations
// form "a sequence of repeated independent trials", Section 4.3): an
// operation's whole trace of actions completes atomically.  The analytic
// Markov engine drives this runtime to enumerate protocol state spaces and
// exact per-operation costs, and the lockstep simulation driver uses it for
// sampled workloads.  The runtime is copyable so the engine can snapshot
// and restore protocol states cheaply.
//
// Only the nodes that will ever issue operations (the roster) plus the home
// node carry live machines; broadcasts still *charge* for every receiver in
// the N+1-node system, but deliver only to live machines.  Nodes outside
// the roster never act, so their (constant) state cannot influence costs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "fsm/mealy.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "sim/coherence_tap.h"
#include "sim/config.h"

namespace drsm::sim {

/// Result of one atomically executed operation.
struct OpResult {
  Cost cost = 0.0;              // total communication cost of the trace
  std::size_t messages = 0;     // inter-node messages in the trace
  std::uint64_t read_value = 0; // value returned (reads only)
  std::uint64_t read_version = 0;
  bool read_returned = false;
  bool completed = false;       // write/eject/sync completion observed
};

class SequentialRuntime {
 public:
  /// `roster` lists the client nodes that will issue operations; the home
  /// node is always live and may issue operations too.
  SequentialRuntime(protocols::ProtocolKind kind, const SystemConfig& config,
                    std::vector<NodeId> roster);

  /// As above, but machines come from a caller-supplied factory (used to
  /// run the formal transition-table machines of fsm/table.h through the
  /// same harness).  Operation-support checks are skipped.
  using MachineFactory =
      std::function<std::unique_ptr<fsm::ProtocolMachine>(NodeId)>;
  SequentialRuntime(const MachineFactory& factory, const SystemConfig& config,
                    std::vector<NodeId> roster);

  SequentialRuntime(const SequentialRuntime& other);
  SequentialRuntime& operator=(const SequentialRuntime& other);
  SequentialRuntime(SequentialRuntime&&) noexcept = default;
  SequentialRuntime& operator=(SequentialRuntime&&) noexcept = default;

  /// Executes one operation to completion.  Write operations carry the
  /// value to store.  Throws drsm::Error if the protocol does not support
  /// the operation kind.
  OpResult execute(NodeId node, fsm::OpKind op, std::uint64_t value = 0);

  /// Switches the object to protocol `to` at quiescence (always, between
  /// execute() calls): replaces every live machine with a fresh one of the
  /// new protocol, then re-seeds the new machines with the latest
  /// serialized write by re-committing the same (value, version) pair
  /// through a home write — the version counter is rewound by one so the
  /// seed draws the *same* version, keeping the serialization history
  /// contiguous (the oracle accepts duplicate reports of an identical
  /// pair).  The observer, sink, and coherence tap are detached for the
  /// seed, so referees see one unbroken per-object history across the
  /// switch.  Returns the seed's communication cost (the runtime-level
  /// price of the migration; zero when the object was never written).
  /// No-op when `to` is the current protocol.  Not available on
  /// factory-built runtimes.
  OpResult migrate(protocols::ProtocolKind to);

  /// Protocol-relevant state of all live machines, usable as a Markov-state
  /// key.  Only valid at quiescence (always, between execute() calls).
  std::vector<std::uint8_t> encode_state() const;

  /// Allocation-free variant: clears `out` and appends the encoding.
  void encode_state(std::vector<std::uint8_t>& out) const;

  /// Restores all machines from a key produced by encode_state() on a
  /// runtime with the same protocol, config and roster.  Returns false if
  /// any machine does not implement fsm::ProtocolMachine::decode — the
  /// machine states are then unspecified and the runtime must be
  /// discarded.  On success the runtime is quiescent and ready to
  /// execute() from the restored state.  Data values/versions are not
  /// restored (they are not part of the key and do not influence traces).
  bool restore_state(const std::vector<std::uint8_t>& key);

  /// The value and version of the globally latest sequenced write.
  std::uint64_t latest_value() const { return latest_value_; }
  std::uint64_t latest_version() const { return version_counter_; }

  const SystemConfig& config() const { return config_; }
  protocols::ProtocolKind protocol() const { return kind_; }
  const std::vector<NodeId>& roster() const { return roster_; }

  /// Copy-state name at `node` (for tests and the trace inspector).
  const char* state_name(NodeId node) const;

  /// Observer invoked for every inter-node message (src, dst, message).
  using Observer =
      std::function<void(NodeId, NodeId, const fsm::Message&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches a structured trace sink.  The time axis is the operation
  /// index (each execute() call spans one unit): operation issue/complete,
  /// every inter-node message as a paired send/recv, and copy-state
  /// transitions are delivered.  With no sink the instrumentation is one
  /// null check per site.  Pass nullptr to detach.
  void set_sink(obs::EventSink* sink) { sink_ = sink; }

  /// Attaches a coherence tap (see sim/coherence_tap.h).  The time axis is
  /// the operation index, as for set_sink.  Not copied by snapshots, like
  /// the observer and sink.  Pass nullptr to detach.
  void set_coherence_tap(CoherenceTap* tap) { tap_ = tap; }

 private:
  class Context;
  friend class Context;

  fsm::ProtocolMachine* machine(NodeId node);
  void drain(Context& ctx);
  void dispatch(Context& ctx, fsm::ProtocolMachine& target, NodeId node,
                const fsm::Message& msg);

  protocols::ProtocolKind kind_;
  bool custom_machines_ = false;
  SystemConfig config_;
  std::vector<NodeId> roster_;  // sorted, home appended
  std::vector<std::unique_ptr<fsm::ProtocolMachine>> machines_;  // by roster_
  struct Pending {
    NodeId dest = 0;
    fsm::Message msg;
    std::uint64_t id = 0;  // send/recv pairing; 0 = untraced
  };
  std::deque<Pending> network_;
  std::uint64_t version_counter_ = 0;
  std::uint64_t latest_value_ = 0;
  std::uint64_t op_index_ = 0;   // trace time axis
  std::uint64_t msg_seq_ = 0;
  std::uint64_t span_seq_ = 0;   // causal span ids, one per execute()
  Observer observer_;  // not copied by design (snapshots stay silent)
  obs::EventSink* sink_ = nullptr;  // likewise not copied
  CoherenceTap* tap_ = nullptr;     // likewise not copied
};

}  // namespace drsm::sim
