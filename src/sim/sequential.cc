#include "sim/sequential.h"

#include <algorithm>

#include "support/error.h"

namespace drsm::sim {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

/// MachineContext implementation for atomic (run-to-quiescence) execution.
class SequentialRuntime::Context final : public fsm::MachineContext {
 public:
  Context(SequentialRuntime& rt, NodeId self, OpResult& result)
      : rt_(rt), self_(self), result_(result) {}

  NodeId self() const override { return self_; }
  std::size_t num_clients() const override { return rt_.config_.num_clients; }
  const fsm::CostModel& costs() const override { return rt_.config_.costs; }

  void send(NodeId dest, Message msg) override {
    DRSM_CHECK(dest < num_nodes(), "send: destination out of range");
    msg.sender = self_;
    // Messages sent while handling a message inherit its causal span
    // (the machines never stamp spans themselves).
    msg.span = span_;
    std::uint64_t id = 0;
    if (dest != self_) {
      const Cost cost = costs().message_cost(msg.token.params);
      result_.cost += cost;
      ++result_.messages;
      if (rt_.observer_) rt_.observer_(self_, dest, msg);
      if (rt_.sink_ != nullptr) {
        id = ++rt_.msg_seq_;
        obs::TraceEvent event;
        event.time = static_cast<double>(rt_.op_index_);
        event.kind = obs::EventKind::kMsgSend;
        event.node = self_;
        event.peer = dest;
        event.object = msg.token.object;
        event.msg_id = id;
        event.token = msg.token;
        event.value = msg.value;
        event.version = msg.version;
        event.hops = msg.hops;
        event.cost = cost;
        event.span = msg.span;
        rt_.sink_->on_event(event);
      }
    }
    rt_.network_.push_back({dest, msg, id});
  }

  void send_except(std::initializer_list<NodeId> excluded,
                   Message msg) override {
    DRSM_CHECK(std::find(excluded.begin(), excluded.end(), self_) !=
                   excluded.end(),
               "send_except: sender must exclude itself");
    for (NodeId node = 0; node < num_nodes(); ++node) {
      if (std::find(excluded.begin(), excluded.end(), node) !=
          excluded.end())
        continue;
      send(node, msg);
    }
  }

  void return_read(std::uint64_t value, std::uint64_t version) override {
    result_.read_value = value;
    result_.read_version = version;
    result_.read_returned = true;
    if (rt_.tap_ != nullptr)
      rt_.tap_->on_read(static_cast<double>(rt_.op_index_), self_, object_,
                        value, version);
  }

  void complete_write(std::uint64_t /*version*/) override {
    result_.completed = true;
  }

  void complete_op() override { result_.completed = true; }

  void disable_local_queue() override {}
  void enable_local_queue() override {}

  std::uint64_t next_version() override { return ++rt_.version_counter_; }

  void commit_write(std::uint64_t version, std::uint64_t value) override {
    if (rt_.tap_ != nullptr)
      rt_.tap_->on_commit(static_cast<double>(rt_.op_index_), self_, object_,
                          version, value);
  }

  /// Re-targets the context at another node while draining the network.
  void set_self(NodeId self) { self_ = self; }
  void set_object(ObjectId object) { object_ = object; }
  void set_span(std::uint64_t span) { span_ = span; }

 private:
  SequentialRuntime& rt_;
  NodeId self_;
  ObjectId object_ = 0;
  std::uint64_t span_ = 0;  // span of the message being handled
  OpResult& result_;
};

SequentialRuntime::SequentialRuntime(protocols::ProtocolKind kind,
                                     const SystemConfig& config,
                                     std::vector<NodeId> roster)
    : kind_(kind), config_(config), roster_(std::move(roster)) {
  const NodeId home = static_cast<NodeId>(config_.num_clients);
  for (NodeId node : roster_)
    DRSM_CHECK(node < home, "roster must contain client indices only");
  std::sort(roster_.begin(), roster_.end());
  roster_.erase(std::unique(roster_.begin(), roster_.end()), roster_.end());
  roster_.push_back(home);
  machines_.reserve(roster_.size());
  for (NodeId node : roster_)
    machines_.push_back(
        protocols::make_machine(kind_, node, config_.num_clients));
}

SequentialRuntime::SequentialRuntime(const MachineFactory& factory,
                                     const SystemConfig& config,
                                     std::vector<NodeId> roster)
    : kind_(protocols::ProtocolKind::kWriteThrough),
      custom_machines_(true),
      config_(config),
      roster_(std::move(roster)) {
  const NodeId home = static_cast<NodeId>(config_.num_clients);
  for (NodeId node : roster_)
    DRSM_CHECK(node < home, "roster must contain client indices only");
  std::sort(roster_.begin(), roster_.end());
  roster_.erase(std::unique(roster_.begin(), roster_.end()), roster_.end());
  roster_.push_back(home);
  machines_.reserve(roster_.size());
  for (NodeId node : roster_) machines_.push_back(factory(node));
}

SequentialRuntime::SequentialRuntime(const SequentialRuntime& other)
    : kind_(other.kind_),
      custom_machines_(other.custom_machines_),
      config_(other.config_),
      roster_(other.roster_),
      network_(other.network_),
      version_counter_(other.version_counter_),
      latest_value_(other.latest_value_),
      op_index_(other.op_index_),
      msg_seq_(other.msg_seq_),
      span_seq_(other.span_seq_) {
  machines_.reserve(other.machines_.size());
  for (const auto& machine : other.machines_)
    machines_.push_back(machine->clone());
}

SequentialRuntime& SequentialRuntime::operator=(
    const SequentialRuntime& other) {
  if (this == &other) return *this;
  SequentialRuntime copy(other);
  *this = std::move(copy);
  return *this;
}

fsm::ProtocolMachine* SequentialRuntime::machine(NodeId node) {
  const auto it = std::lower_bound(roster_.begin(), roster_.end(), node);
  if (it == roster_.end() || *it != node) return nullptr;
  return machines_[static_cast<std::size_t>(it - roster_.begin())].get();
}

OpResult SequentialRuntime::execute(NodeId node, OpKind op,
                                    std::uint64_t value) {
  DRSM_CHECK(custom_machines_ || protocols::supports(kind_, op),
             std::string("protocol does not support op ") +
                 fsm::to_string(op));
  fsm::ProtocolMachine* target = machine(node);
  DRSM_CHECK(target != nullptr, "operation at a node outside the roster");
  DRSM_CHECK(network_.empty(), "network not quiescent");

  OpResult result;
  Context ctx(*this, node, result);

  Message request;
  switch (op) {
    case OpKind::kRead: request.token.type = MsgType::kReadReq; break;
    case OpKind::kWrite: request.token.type = MsgType::kWriteReq; break;
    case OpKind::kEject: request.token.type = MsgType::kEject; break;
    case OpKind::kSync: request.token.type = MsgType::kSyncReq; break;
  }
  request.token.initiator = node;
  request.token.object = 0;
  request.token.queue = node == ctx.home() ? QueueKind::kDistributed
                                           : QueueKind::kLocal;
  request.token.params = op == OpKind::kWrite ? ParamPresence::kWriteParams
                                              : ParamPresence::kReadParams;
  request.value = value;
  request.sender = node;
  request.span = ++span_seq_;

  if (sink_ != nullptr) {
    obs::TraceEvent event;
    event.time = static_cast<double>(op_index_);
    event.kind = obs::EventKind::kOpIssue;
    event.op = op;
    event.node = node;
    event.span = request.span;
    sink_->on_event(event);
  }
  if (tap_ != nullptr && op == OpKind::kWrite)
    tap_->on_write_issue(static_cast<double>(op_index_), node,
                         request.token.object, value);

  dispatch(ctx, *target, node, request);
  drain(ctx);

  if (sink_ != nullptr) {
    obs::TraceEvent event;
    event.time = static_cast<double>(op_index_ + 1);
    event.kind = obs::EventKind::kOpComplete;
    event.op = op;
    event.node = node;
    event.cost = result.cost;
    event.span = request.span;
    sink_->on_event(event);
  }
  ++op_index_;

  if (op == OpKind::kWrite) latest_value_ = value;
  if (op == OpKind::kRead)
    DRSM_CHECK(result.read_returned, "read did not return data");
  else
    DRSM_CHECK(result.completed, "operation did not complete");
  return result;
}

OpResult SequentialRuntime::migrate(protocols::ProtocolKind to) {
  DRSM_CHECK(!custom_machines_, "migrate: factory-built runtimes are fixed");
  DRSM_CHECK(network_.empty(), "migrate: network not quiescent");
  if (to == kind_) return {};
  kind_ = to;
  machines_.clear();
  for (NodeId node : roster_)
    machines_.push_back(
        protocols::make_machine(kind_, node, config_.num_clients));
  if (version_counter_ == 0) return {};  // never written: nothing to seed

  // Re-commit the latest write under the new protocol, silently: the
  // referees already saw this (value, version) pair sequenced once.
  const std::uint64_t version = version_counter_;
  const std::uint64_t value = latest_value_;
  Observer observer = std::move(observer_);
  obs::EventSink* sink = sink_;
  CoherenceTap* tap = tap_;
  observer_ = nullptr;
  sink_ = nullptr;
  tap_ = nullptr;
  version_counter_ = version - 1;
  const NodeId home = static_cast<NodeId>(config_.num_clients);
  const OpResult seed = execute(home, OpKind::kWrite, value);
  DRSM_CHECK(version_counter_ == version,
             "migrate: seed write drew an unexpected version");
  observer_ = std::move(observer);
  sink_ = sink;
  tap_ = tap;
  return seed;
}

void SequentialRuntime::drain(Context& ctx) {
  while (!network_.empty()) {
    auto [dest, msg, id] = network_.front();
    network_.pop_front();
    if (sink_ != nullptr && id != 0) {
      obs::TraceEvent event;
      event.time = static_cast<double>(op_index_);
      event.kind = obs::EventKind::kMsgRecv;
      event.node = dest;
      event.peer = msg.sender;
      event.object = msg.token.object;
      event.msg_id = id;
      event.token = msg.token;
      event.value = msg.value;
      event.version = msg.version;
      event.hops = msg.hops;
      event.span = msg.span;
      sink_->on_event(event);
    }
    fsm::ProtocolMachine* target = machine(dest);
    if (target == nullptr) continue;  // passive node; cost already charged
    ctx.set_self(dest);
    dispatch(ctx, *target, dest, msg);
  }
}

/// Runs one message through a machine, reporting the copy-state change (if
/// any) to the attached sink.
void SequentialRuntime::dispatch(Context& ctx, fsm::ProtocolMachine& target,
                                 NodeId node, const fsm::Message& msg) {
  ctx.set_object(msg.token.object);
  ctx.set_span(msg.span);
  if (sink_ == nullptr) {
    target.on_message(ctx, msg);
    return;
  }
  const char* before = target.state_name();
  target.on_message(ctx, msg);
  const char* after = target.state_name();
  if (before != after) {
    obs::TraceEvent event;
    event.time = static_cast<double>(op_index_);
    event.kind = obs::EventKind::kStateTransition;
    event.node = node;
    event.object = msg.token.object;
    event.span = msg.span;
    event.detail = before;
    event.detail2 = after;
    sink_->on_event(event);
  }
}

std::vector<std::uint8_t> SequentialRuntime::encode_state() const {
  std::vector<std::uint8_t> out;
  encode_state(out);
  return out;
}

void SequentialRuntime::encode_state(std::vector<std::uint8_t>& out) const {
  out.clear();
  for (const auto& machine : machines_) {
    DRSM_CHECK(machine->quiescent(), "encode_state: machine not quiescent");
    machine->encode(out);
  }
}

bool SequentialRuntime::restore_state(const std::vector<std::uint8_t>& key) {
  DRSM_CHECK(network_.empty(), "restore_state: network not quiescent");
  const std::uint8_t* p = key.data();
  const std::uint8_t* end = p + key.size();
  for (const auto& machine : machines_)
    if (!machine->decode(p, end)) return false;
  DRSM_CHECK(p == end, "restore_state: trailing bytes in state key");
  return true;
}

const char* SequentialRuntime::state_name(NodeId node) const {
  auto* self = const_cast<SequentialRuntime*>(this);
  fsm::ProtocolMachine* target = self->machine(node);
  DRSM_CHECK(target != nullptr, "state_name: node outside the roster");
  return target->state_name();
}

}  // namespace drsm::sim
