// ThreadedRuntime: the protocols under *real* concurrency.
//
// The paper validated its analysis against a multitasking Ada simulator —
// genuinely concurrent tasks, not a discrete-event loop.  This runtime is
// the C++ counterpart of that design point: one std::jthread per node,
// lock-free FIFO inboxes (sim::MpscRing), and the same protocol machines
// as everywhere else.  Unlike sim::EventSimulator it has no virtual clock
// and is not deterministic; what it demonstrates is that the protocol
// adaptations are correct under true parallel execution (arbitrary real
// interleavings), and it measures the same communication cost metric.
//
// Concurrency structure (a node's machine state is only ever touched by
// its own thread; cross-thread communication is exclusively through the
// inboxes and a few atomic counters):
//   * node thread loop: drain inbox in batches -> maybe issue the next
//     application operation (closed loop: one in flight per node) -> park
//     on the inbox's event gate;
//   * send(): lock-free push into the target's ring (FIFO per channel is
//     inherited from the ring's per-producer FIFO), futex wake only when
//     the receiver is parked;
//   * termination: an atomic count of undelivered messages plus an atomic
//     count of in-flight operations; both zero with the issue budget
//     exhausted means quiescence.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "protocols/protocol.h"
#include "sim/config.h"
#include "sim/event_sim.h"  // WorkloadDriver

namespace drsm::sim {

struct ThreadedOptions {
  /// Total operations to issue across all nodes.
  std::size_t total_ops = 2000;
  /// Operations (by completion order) excluded from the measured cost.
  std::size_t warmup_ops = 0;
  /// Verify per-node version monotonicity while running.
  bool check_coherence = true;
  /// Optional metrics registry: after the run joins, run counters, the
  /// acc/wall-time summary, and the per-node message spread are published
  /// into it (threaded.* names, see docs/OBSERVABILITY.md).  Publication
  /// happens entirely after the worker threads join, so attaching a
  /// registry never perturbs the measured concurrency.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ThreadedStats {
  Cost measured_cost = 0.0;
  std::size_t measured_ops = 0;
  Cost total_cost = 0.0;
  std::size_t total_ops = 0;
  std::size_t messages = 0;

  double acc() const {
    return measured_ops == 0
               ? 0.0
               : measured_cost / static_cast<double>(measured_ops);
  }
};

/// Runs `driver`'s operations on `kind` over an N+1-node threaded system
/// and returns the measured costs.  The driver is called under a lock (the
/// workload generators are not thread-safe); everything else runs truly in
/// parallel.  Throws drsm::Error on any coherence violation.
ThreadedStats run_threaded(protocols::ProtocolKind kind,
                           const SystemConfig& config,
                           const ThreadedOptions& options,
                           WorkloadDriver& driver);

}  // namespace drsm::sim
