#include "sim/threaded.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>

#include "sim/mpsc_ring.h"
#include "support/error.h"
#include "support/text.h"

namespace drsm::sim {

using fsm::Message;
using fsm::MsgType;
using fsm::OpKind;
using fsm::ParamPresence;
using fsm::QueueKind;

namespace {

struct Shared;

/// Everything owned by one node.  The machine state and the local tallies
/// are touched only by the node's own thread; the inbox is the only
/// cross-thread surface.
// With one operation in flight per node, inbox occupancy is bounded by a
// few messages per peer; this capacity leaves orders of magnitude of slack
// (overflow is a failed run, not a wait — see send()).
constexpr std::size_t kInboxCapacity = 1 << 13;

struct Node {
  // Cross-thread: the inbox (lock-free MPSC; this node's thread is the
  // single consumer, every peer a producer).
  MpscRing<Message> inbox{kInboxCapacity};

  // Thread-local to the owning node thread.
  std::vector<std::unique_ptr<fsm::ProtocolMachine>> machines;  // per object
  std::vector<std::uint64_t> last_seen_version;                 // per object
  bool op_in_flight = false;
  bool op_completed_flag = false;
  bool driver_done = false;

  // Local tallies, merged after join.
  Cost warmup_cost = 0.0;
  Cost measured_cost = 0.0;
  std::size_t messages = 0;
};

struct Shared {
  protocols::ProtocolKind kind;
  SystemConfig config;
  ThreadedOptions options;
  WorkloadDriver* driver = nullptr;
  std::mutex driver_mu;

  std::vector<std::unique_ptr<Node>> nodes;

  std::atomic<std::size_t> issued{0};
  std::atomic<std::size_t> exhausted_nodes{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> active_ops{0};
  std::atomic<std::size_t> pending_msgs{0};
  std::atomic<std::uint64_t> version_counter{0};
  std::atomic<std::uint64_t> value_counter{0};

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::string error;

  void fail(const std::string& what) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.empty()) error = what;
    }
    failed.store(true);
  }
};

/// MachineContext bound to one node thread.
class ThreadedCtx final : public fsm::MachineContext {
 public:
  ThreadedCtx(Shared& shared, NodeId self)
      : shared_(shared), self_(self), node_(*shared.nodes[self]) {}

  NodeId self() const override { return self_; }
  std::size_t num_clients() const override {
    return shared_.config.num_clients;
  }
  const fsm::CostModel& costs() const override {
    return shared_.config.costs;
  }

  void send(NodeId dest, Message msg) override {
    DRSM_CHECK(dest < num_nodes(), "send: destination out of range");
    msg.sender = self_;
    if (dest != self_) {
      const Cost cost = costs().message_cost(msg.token.params);
      // Attribute to the warm-up or measurement phase by the (approximate)
      // global completion count at send time — the same smearing the
      // paper's warm-up cut applies.
      if (shared_.completed.load(std::memory_order_relaxed) <
          shared_.options.warmup_ops) {
        node_.warmup_cost += cost;
      } else {
        node_.measured_cost += cost;
      }
      ++node_.messages;
    }
    Node& target = *shared_.nodes[dest];
    shared_.pending_msgs.fetch_add(1, std::memory_order_acq_rel);
    if (!target.inbox.try_push(msg)) {
      // The closed loop bounds occupancy far below capacity, so a full
      // inbox means the receiver stopped draining (it failed or wedged).
      // Yield-retry briefly, then declare the run failed rather than hang.
      bool pushed = false;
      for (int spin = 0; spin < 1'000'000 && !pushed; ++spin) {
        if (shared_.failed.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
        pushed = target.inbox.try_push(msg);
      }
      if (!pushed) {
        shared_.pending_msgs.fetch_sub(1, std::memory_order_acq_rel);
        shared_.fail(strfmt("inbox overflow: node %u -> node %u", self_,
                            dest));
      }
    }
  }

  void send_except(std::initializer_list<NodeId> excluded,
                   Message msg) override {
    for (NodeId node = 0; node < num_nodes(); ++node) {
      bool skip = false;
      for (NodeId ex : excluded) skip = skip || ex == node;
      if (!skip) send(node, msg);
    }
  }

  void return_read(std::uint64_t /*value*/, std::uint64_t version) override {
    if (shared_.options.check_coherence && version > 0) {
      std::uint64_t& last = node_.last_seen_version[current_object_];
      if (version < last) {
        shared_.fail(strfmt(
            "coherence: node %u saw version regress on object %u", self_,
            current_object_));
      }
      last = std::max(last, version);
    }
    complete();
  }

  void complete_write(std::uint64_t /*version*/) override { complete(); }
  void complete_op() override { complete(); }

  void disable_local_queue() override {}
  void enable_local_queue() override {}

  std::uint64_t next_version() override {
    return shared_.version_counter.fetch_add(1, std::memory_order_acq_rel) +
           1;
  }

  ObjectId current_object_ = 0;

 private:
  void complete() {
    node_.op_completed_flag = true;
    if (node_.op_in_flight) {
      node_.op_in_flight = false;
      shared_.completed.fetch_add(1, std::memory_order_acq_rel);
      shared_.active_ops.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  Shared& shared_;
  NodeId self_;
  Node& node_;
};

void process(Shared& shared, ThreadedCtx& ctx, Node& node,
             const Message& msg) {
  ctx.current_object_ = msg.token.object;
  try {
    node.machines[msg.token.object]->on_message(ctx, msg);
  } catch (const Error& e) {
    shared.fail(e.what());
  }
}

/// Issues one application operation if the budget allows.  Returns true if
/// an operation was started.
bool try_issue(Shared& shared, ThreadedCtx& ctx, Node& node, NodeId id) {
  if (node.op_in_flight) return false;
  if (shared.issued.load(std::memory_order_relaxed) >=
      shared.options.total_ops)
    return false;

  std::optional<WorkloadDriver::Op> op;
  {
    std::lock_guard<std::mutex> lock(shared.driver_mu);
    if (shared.issued.load(std::memory_order_relaxed) >=
        shared.options.total_ops)
      return false;
    op = shared.driver->next_op(id);
    if (!op.has_value()) {
      // Our drivers are permanent-nullopt once exhausted; count the node
      // out so quiescence detection works when the driver runs dry before
      // the ops budget (e.g. trace replay).
      if (!node.driver_done) {
        node.driver_done = true;
        shared.exhausted_nodes.fetch_add(1, std::memory_order_acq_rel);
      }
      return false;
    }
    shared.issued.fetch_add(1, std::memory_order_acq_rel);
  }

  Message request;
  switch (op->kind) {
    case OpKind::kRead: request.token.type = MsgType::kReadReq; break;
    case OpKind::kWrite: request.token.type = MsgType::kWriteReq; break;
    case OpKind::kEject: request.token.type = MsgType::kEject; break;
    case OpKind::kSync: request.token.type = MsgType::kSyncReq; break;
  }
  request.token.initiator = id;
  request.token.object = op->object;
  request.token.queue = id == static_cast<NodeId>(shared.config.num_clients)
                            ? QueueKind::kDistributed
                            : QueueKind::kLocal;
  request.token.params = op->kind == OpKind::kWrite
                             ? ParamPresence::kWriteParams
                             : ParamPresence::kReadParams;
  request.value =
      shared.value_counter.fetch_add(1, std::memory_order_acq_rel) + 1;
  request.sender = id;

  node.op_in_flight = true;
  node.op_completed_flag = false;
  shared.active_ops.fetch_add(1, std::memory_order_acq_rel);
  process(shared, ctx, node, request);
  return true;
}

void node_main(std::stop_token stop, Shared& shared, NodeId id) {
  Node& node = *shared.nodes[id];
  ThreadedCtx ctx(shared, id);
  std::vector<Message> batch(256);
  while (!stop.stop_requested() && !shared.failed.load()) {
    // Drain the inbox in batches.
    bool processed = false;
    for (;;) {
      const std::size_t n = node.inbox.pop_batch(batch.data(), batch.size());
      if (n == 0) break;
      processed = true;
      for (std::size_t i = 0; i < n; ++i) {
        process(shared, ctx, node, batch[i]);
        shared.pending_msgs.fetch_sub(1, std::memory_order_acq_rel);
      }
    }

    // Closed loop: issue while operations complete synchronously.
    bool issued_any = false;
    while (try_issue(shared, ctx, node, id)) {
      issued_any = true;
      if (node.op_in_flight) break;  // blocked on a remote response
    }

    if (!processed && !issued_any) {
      // Park on the inbox gate; a send() to us (or the final poke) wakes
      // us.  The eventcount handshake closes the lost-wakeup window.
      const std::uint32_t ticket = node.inbox.prepare_wait();
      if (node.inbox.can_pop() || stop.stop_requested() ||
          shared.failed.load()) {
        node.inbox.cancel_wait();
        continue;
      }
      node.inbox.wait(ticket);
    }
  }
}

}  // namespace

ThreadedStats run_threaded(protocols::ProtocolKind kind,
                           const SystemConfig& config,
                           const ThreadedOptions& options,
                           WorkloadDriver& driver) {
  DRSM_CHECK(config.num_clients >= 1, "need at least one client");
  DRSM_CHECK(config.num_objects >= 1, "need at least one object");

  const auto wall_start = std::chrono::steady_clock::now();

  Shared shared;
  shared.kind = kind;
  shared.config = config;
  shared.options = options;
  shared.driver = &driver;

  const std::size_t node_count = config.num_clients + 1;
  shared.nodes.reserve(node_count);
  for (NodeId id = 0; id < node_count; ++id) {
    auto node = std::make_unique<Node>();
    node->machines.reserve(config.num_objects);
    for (ObjectId obj = 0; obj < config.num_objects; ++obj)
      node->machines.push_back(
          protocols::make_machine(kind, id, config.num_clients));
    node->last_seen_version.assign(config.num_objects, 0);
    shared.nodes.push_back(std::move(node));
  }

  {
    std::vector<std::jthread> threads;
    threads.reserve(node_count);
    for (NodeId id = 0; id < node_count; ++id)
      threads.emplace_back(
          [&shared, id](std::stop_token st) { node_main(st, shared, id); });

    // Quiescence: the budget is exhausted, no operation is in flight, and
    // no message is undelivered.  (Sends increment pending_msgs before the
    // push and operations increment active_ops before processing, so a
    // zero reading cannot race with hidden work.)
    for (;;) {
      if (shared.failed.load()) break;
      const bool budget_done =
          shared.issued.load() >= options.total_ops ||
          shared.exhausted_nodes.load() == node_count;
      if (budget_done && shared.active_ops.load() == 0 &&
          shared.pending_msgs.load() == 0)
        break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& thread : threads) thread.request_stop();
    for (NodeId id = 0; id < node_count; ++id)
      shared.nodes[id]->inbox.poke();
  }  // jthreads join here

  if (shared.failed.load()) {
    std::lock_guard<std::mutex> lock(shared.error_mu);
    throw Error("threaded runtime: " + shared.error);
  }

  ThreadedStats stats;
  for (const auto& node : shared.nodes) {
    stats.measured_cost += node->measured_cost;
    stats.total_cost += node->warmup_cost + node->measured_cost;
    stats.messages += node->messages;
  }
  stats.total_ops = shared.completed.load();
  stats.measured_ops =
      stats.total_ops > options.warmup_ops
          ? stats.total_ops - options.warmup_ops
          : 0;

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& m = *options.metrics;
    m.counter("threaded.runs").inc();
    m.counter("threaded.ops").inc(stats.total_ops);
    m.counter("threaded.messages").inc(stats.messages);
    std::uint64_t inbox_stalls = 0;
    for (const auto& node : shared.nodes)
      inbox_stalls += node->inbox.full_stalls();
    m.counter("threaded.inbox_stalls").inc(inbox_stalls);
    m.gauge("threaded.acc").set(stats.acc());
    m.gauge("threaded.measured_cost").add(stats.measured_cost);
    m.gauge("threaded.wall_ms")
        .set(std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - wall_start)
                 .count());
    // Per-node message spread (x = node id): where the protocol-processor
    // load sits — the fixed-sequencer protocols pile onto node N.
    obs::TimeSeries& spread = m.series("threaded.node_messages");
    for (NodeId id = 0; id < node_count; ++id)
      spread.sample(static_cast<double>(id),
                    static_cast<double>(shared.nodes[id]->messages));
  }
  return stats;
}

}  // namespace drsm::sim
