// Shared configuration of the distributed system under study (Section 2).
#pragma once

#include <cstddef>

#include "fsm/token.h"
#include "support/types.h"

namespace drsm::sim {

/// Static description of the N+1-node system.
struct SystemConfig {
  /// N: number of client nodes (0..N-1); node N is the home/sequencer.
  std::size_t num_clients = 3;

  /// S and P of the cost model (Section 4.1).
  fsm::CostModel costs;

  /// M: number of disjoint shared objects (full replication).
  std::size_t num_objects = 1;
};

/// Message latency model for the discrete-event simulator.  Latencies do
/// not affect communication *cost* (the paper's metric counts messages);
/// they control how much concurrency the system exhibits and therefore how
/// far the simulation deviates from the one-operation-at-a-time analysis.
struct LatencyModel {
  SimTime min_latency = 1;
  SimTime max_latency = 1;  // uniform in [min, max]

  /// Time a node spends handling one message.
  SimTime processing_time = 0;
};

}  // namespace drsm::sim
