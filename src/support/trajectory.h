// Trajectory hashing: folds an observed event stream into one FNV-1a
// accumulator so two runs can be compared with a single integer equality.
//
// The determinism suites pin full message trajectories this way (tests),
// the model-checker counterexample replayer pins counterexamples, and the
// concurrent runtime's determinism checks pin grant streams.  Keeping the
// accumulator here (rather than in tests/) gives all three the same
// folding order and constants, so hashes are comparable across binaries.
//
// mix_message is templated on the message type instead of including
// fsm/token.h: support/ sits below fsm/ in the layering, and the template
// only needs the (token, value, version, hops) shape at instantiation
// time.
#pragma once

#include <cstdint>

#include "support/types.h"

namespace drsm {

struct TrajectoryHash {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t events = 0;

  void mix(std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  }

  /// Folds an observed message into the hash as the (time, src, dst,
  /// five-tuple, payload) record the golden constants were captured under.
  template <class Message>
  void mix_message(std::uint64_t time, NodeId src, NodeId dst,
                   const Message& msg) {
    mix(time);
    mix(src);
    mix(dst);
    mix(static_cast<std::uint64_t>(msg.token.type));
    mix(msg.token.initiator);
    mix(msg.token.object);
    mix(static_cast<std::uint64_t>(msg.token.params));
    mix(msg.value);
    mix(msg.version);
    mix(msg.hops);
    ++events;
  }

  /// Folds one completed-operation grant record (the concurrent runtime's
  /// determinism unit: what the application observed, in completion order).
  void mix_grant(std::uint64_t object, std::uint64_t op, std::uint64_t value,
                 std::uint64_t version, std::uint64_t cost_units) {
    mix(object);
    mix(op);
    mix(value);
    mix(version);
    mix(cost_units);
    ++events;
  }
};

}  // namespace drsm
