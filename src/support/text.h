// Small text-formatting helpers (libstdc++ 12 does not ship std::format).
#pragma once

#include <cstdarg>
#include <string>
#include <vector>

namespace drsm {

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a simple aligned ASCII table: header row plus data rows.  Used by
/// the benchmark harness to print paper-style tables.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace drsm
