#include "support/rng.h"

#include <cmath>

namespace drsm {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DRSM_CHECK(lo <= hi, "empty uniform range");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DRSM_CHECK(n > 0, "uniform_index(0)");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::bernoulli(double p) {
  DRSM_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p out of [0,1]");
  return uniform() < p;
}

double Rng::exponential(double rate) {
  DRSM_CHECK(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

Rng Rng::split(std::uint64_t stream_id) const {
  std::uint64_t mix = seed_;
  const std::uint64_t a = splitmix64(mix);
  mix ^= stream_id * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL;
  const std::uint64_t b = splitmix64(mix);
  return Rng(a ^ rotl(b, 32) ^ stream_id);
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights) {
  DRSM_CHECK(!weights.empty(), "categorical needs at least one outcome");
  double total = 0.0;
  for (double w : weights) {
    DRSM_CHECK(w >= 0.0, "categorical weight must be non-negative");
    total += w;
  }
  DRSM_CHECK(total > 0.0, "categorical weights sum to zero");

  const std::size_t k = weights.size();
  norm_.resize(k);
  for (std::size_t i = 0; i < k; ++i) norm_[i] = weights[i] / total;

  // Walker/Vose alias construction.
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);
  std::vector<double> scaled(k);
  std::vector<std::size_t> small, large;
  for (std::size_t i = 0; i < k; ++i) {
    scaled[i] = norm_[i] * static_cast<double>(k);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t CategoricalSampler::sample(Rng& rng) const {
  const std::size_t cell = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[cell] ? cell : alias_[cell];
}

double CategoricalSampler::probability(std::size_t i) const {
  DRSM_CHECK(i < norm_.size(), "categorical index out of range");
  return norm_[i];
}

}  // namespace drsm
