// Fundamental identifier and cost types shared by every drsm subsystem.
//
// The paper's system has N clients (indices 1..N) and one sequencer
// (index N+1).  We use 0-based indices internally: clients are 0..N-1 and
// the sequencer is node N; `NodeId` is wide enough for any realistic N.
#pragma once

#include <cstdint>
#include <limits>

namespace drsm {

/// Index of a node (client or sequencer) in the distributed system.
using NodeId = std::uint32_t;

/// Index of a shared object (the paper's data block index j = 1..M).
using ObjectId = std::uint32_t;

/// Communication cost in the paper's abstract units: a message token costs
/// 1 unit, user information adds S units, write parameters add P units.
using Cost = double;

/// Simulated time (discrete-event clock).
using SimTime = std::uint64_t;

/// Sentinel for "no node" (e.g. no current owner).
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

}  // namespace drsm
