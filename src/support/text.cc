#include "support/text.h"

#include <cstdio>

#include "support/error.h"

namespace drsm {

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  DRSM_CHECK(needed >= 0, "vsnprintf failed");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  const std::size_t cols = header.size();
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    DRSM_CHECK(row.size() == cols, "table row width mismatch");
    for (std::size_t c = 0; c < cols; ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < cols; ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header, out);
  for (std::size_t c = 0; c < cols; ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows) emit_row(row, out);
  return out;
}

}  // namespace drsm
