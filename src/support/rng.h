// Deterministic pseudo-random number generation for workload synthesis and
// randomized property tests.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64,
// rather than relying on std::mt19937, so that simulation results are
// bit-reproducible across standard libraries and platforms — the benchmark
// harness quotes numbers produced by these streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/error.h"

namespace drsm {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state and as
/// a cheap standalone mixing function.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.  Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (> 0).
  double exponential(double rate);

  /// Split off an independent stream (for per-node generators).  Uses the
  /// jump-free approach of reseeding through splitmix64 with a stream id.
  Rng split(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t seed_;
};

/// Samples indices 0..k-1 with fixed probabilities; probabilities need not
/// be normalized but must be non-negative with a positive sum.  Sampling is
/// O(1) via Walker's alias method: the workload generators draw one event
/// per simulated operation, so this is on the hot path.
class CategoricalSampler {
 public:
  explicit CategoricalSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }

  /// Normalized probability of outcome i.
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;   // alias-method cell probability
  std::vector<std::size_t> alias_;
  std::vector<double> norm_;   // normalized input probabilities
};

}  // namespace drsm
