#include "support/error.h"

namespace drsm::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  throw Error(std::string("DRSM_CHECK failed: (") + expr + ") at " + file +
              ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}

}  // namespace drsm::detail
