#include "support/error.h"

namespace drsm {

namespace {
FatalHook g_fatal_hook = nullptr;
void* g_fatal_arg = nullptr;
bool g_in_fatal_hook = false;
}  // namespace

void set_fatal_hook(FatalHook hook, void* arg) {
  g_fatal_hook = hook;
  g_fatal_arg = arg;
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  const std::string what = std::string("DRSM_CHECK failed: (") + expr +
                           ") at " + file + ":" + std::to_string(line) +
                           (msg.empty() ? "" : ": " + msg);
  if (g_fatal_hook != nullptr && !g_in_fatal_hook) {
    // A check failing inside the hook itself must not recurse.
    g_in_fatal_hook = true;
    g_fatal_hook(what, g_fatal_arg);
    g_in_fatal_hook = false;
  }
  throw Error(what);
}

}  // namespace detail
}  // namespace drsm
