// Error handling used across drsm.
//
// Internal invariants are enforced with DRSM_CHECK (always on, including in
// release builds: the simulator's correctness claims rest on these holding),
// and user-facing argument validation throws drsm::Error with a formatted
// message.
#pragma once

#include <stdexcept>
#include <string>

namespace drsm {

/// Exception thrown for invalid arguments and violated preconditions on the
/// public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Hook invoked once, just before a failed DRSM_CHECK throws, with the
/// full error text.  Used by the observability layer's flight recorder to
/// write a post-mortem of the events leading up to the failure — the hook
/// must not throw and must not itself trip a DRSM_CHECK (re-entrant
/// failures skip the hook).  Pass nullptr to deregister.  Not thread-safe:
/// install before spawning workers, as with the metrics registry.
using FatalHook = void (*)(const std::string& what, void* arg);
void set_fatal_hook(FatalHook hook, void* arg);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace drsm

/// Always-on invariant check.  `msg` may use string concatenation; it is
/// only evaluated on failure.
#define DRSM_CHECK(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::drsm::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)
