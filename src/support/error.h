// Error handling used across drsm.
//
// Internal invariants are enforced with DRSM_CHECK (always on, including in
// release builds: the simulator's correctness claims rest on these holding),
// and user-facing argument validation throws drsm::Error with a formatted
// message.
#pragma once

#include <stdexcept>
#include <string>

namespace drsm {

/// Exception thrown for invalid arguments and violated preconditions on the
/// public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace drsm

/// Always-on invariant check.  `msg` may use string concatenation; it is
/// only evaluated on failure.
#define DRSM_CHECK(expr, msg)                                          \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::drsm::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)
