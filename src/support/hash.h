// Byte-string and integer hashing for the hot-path hash tables (the
// analytic state interner and the solver's chain cache).
//
// hash_bytes is FNV-1a 64 with a splitmix64-style finalizer so that both
// the low bits (open-addressing probe start) and the high bits are well
// mixed.  The functions are deterministic across platforms — hash values
// may be compared against values computed in another process.
#pragma once

#include <cstddef>
#include <cstdint>

namespace drsm {

/// splitmix64 finalizer: bijective avalanche mix of a 64-bit value.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// FNV-1a 64 over a byte range, finalized with hash_mix.
inline std::uint64_t hash_bytes(const void* data, std::size_t len,
                                std::uint64_t seed = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return hash_mix(h);
}

/// Streaming variant: fold one more 64-bit word into a running hash.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return hash_mix(h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2)));
}

}  // namespace drsm
