// protocol_shootout — compare all eight coherence protocols, analytically
// and by simulation, on a workload given from the command line.
//
// Usage:
//   protocol_shootout [deviation] [p] [disturbance] [a] [N] [S] [P]
//     deviation    read | write | multi   (default read)
//     p            activity-center write probability        (default 0.3)
//     disturbance  sigma / xi / (ignored for multi)         (default 0.1)
//     a            number of disturbers, or beta for multi  (default 2)
//     N            number of clients                        (default 8)
//     S            object transfer cost                     (default 100)
//     P            write-parameter transfer cost            (default 30)
//
// Example:
//   ./build/examples/protocol_shootout write 0.2 0.05 4 16 5000 30
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analytic/lumped.h"
#include "analytic/solver.h"
#include "sim/event_sim.h"
#include "support/text.h"
#include "workload/generator.h"

using namespace drsm;

int main(int argc, char** argv) {
  const std::string deviation = argc > 1 ? argv[1] : "read";
  const double p = argc > 2 ? std::atof(argv[2]) : 0.3;
  const double disturbance = argc > 3 ? std::atof(argv[3]) : 0.1;
  const std::size_t a = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 2;
  const std::size_t n = argc > 5 ? std::strtoul(argv[5], nullptr, 10) : 8;
  const double s_cost = argc > 6 ? std::atof(argv[6]) : 100.0;
  const double p_cost = argc > 7 ? std::atof(argv[7]) : 30.0;

  workload::WorkloadSpec spec;
  try {
    if (deviation == "read") {
      spec = workload::read_disturbance(p, disturbance, a);
    } else if (deviation == "write") {
      spec = workload::write_disturbance(p, disturbance, a);
    } else if (deviation == "multi") {
      spec = workload::multiple_activity_centers(p, a);
    } else {
      std::fprintf(stderr, "unknown deviation '%s'\n", deviation.c_str());
      return 1;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "invalid workload parameters: %s\n", e.what());
    return 1;
  }

  sim::SystemConfig config;
  config.num_clients = n;
  config.costs.s = s_cost;
  config.costs.p = p_cost;

  std::printf(
      "workload: %s (p=%.3g, disturbance=%.3g, a/beta=%zu), "
      "N=%zu, S=%.0f, P=%.0f\n\n",
      spec.name.c_str(), p, disturbance, a, n, s_cost, p_cost);

  // The generic engine's state space grows exponentially in the number of
  // disturbers; past a dozen, switch to the exact lumped chains.
  const bool use_lumped = deviation != "multi" && a > 12;
  if (use_lumped)
    std::printf("(large a: using the exact lumped O(a)-state chains)\n\n");

  analytic::AccSolver solver(config);
  std::vector<std::vector<std::string>> rows;
  double best_acc = -1.0;
  protocols::ProtocolKind best = protocols::ProtocolKind::kWriteThrough;
  for (auto kind : protocols::kAllProtocols) {
    double predicted = 0.0;
    if (!use_lumped) {
      predicted = solver.acc(kind, spec);
    } else if (deviation == "read") {
      predicted = analytic::lumped_read_disturbance_acc(
          kind, n, s_cost, p_cost, p, disturbance, a);
    } else {
      predicted = analytic::lumped_write_disturbance_acc(
          kind, n, s_cost, p_cost, p, disturbance, a);
    }

    sim::SimOptions options;
    options.max_ops = 15000;
    options.warmup_ops = 500;
    options.seed = 7;
    sim::EventSimulator simulator(kind, config, options);
    workload::ConcurrentDriver driver(spec, 8);
    const double simulated = simulator.run(driver).acc();

    rows.push_back({protocols::to_string(kind), strfmt("%.2f", predicted),
                    strfmt("%.2f", simulated),
                    use_lumped
                        ? std::string("O(a) lumped")
                        : strfmt("%zu", solver.chain(kind, spec).num_states())});
    if (best_acc < 0.0 || predicted < best_acc) {
      best_acc = predicted;
      best = kind;
    }
  }
  std::printf("%s\n", render_table({"protocol", "analytic acc",
                                    "simulated acc", "chain states"},
                                   rows)
                          .c_str());
  std::printf("recommendation: %s (predicted acc %.2f)\n",
              protocols::to_string(best), best_acc);
  return 0;
}
