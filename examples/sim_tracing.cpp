// sim_tracing — records a full discrete-event simulation run with the
// observability layer and exports it:
//   * drsm_sim.trace.json   Chrome trace-event format; open it in Perfetto
//                           (ui.perfetto.dev) or chrome://tracing to see
//                           one track per node with operation spans and a
//                           "network" track with every message as an async
//                           arrow from send to receive;
//   * drsm_sim.trace.jsonl  the same events, one JSON object per line,
//                           for ad-hoc scripting;
// and prints the metrics-registry snapshot that the simulator published
// (message mix, latency histogram, sequencer queue-depth series).
//
// Usage: sim_tracing [protocol] [ops]   (default: write-once, 400 ops)
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

using namespace drsm;

int main(int argc, char** argv) {
  protocols::ProtocolKind kind = protocols::ProtocolKind::kWriteOnce;
  std::size_t ops = 400;
  if (argc > 1) {
    try {
      kind = protocols::protocol_from_string(argv[1]);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (argc > 2) ops = static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10));

  sim::SystemConfig config;
  config.num_clients = 4;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  config.num_objects = 2;

  sim::SimOptions options;
  options.max_ops = ops;
  options.warmup_ops = ops / 4;
  options.seed = 7;
  options.latency.min_latency = 1;
  options.latency.max_latency = 4;
  options.latency.processing_time = 2;

  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  sim::EventSimulator simulator(kind, config, options);
  simulator.set_sink(&recorder);
  simulator.set_metrics(&metrics);

  const auto spec = workload::read_disturbance(0.3, 0.1, 3);
  workload::ConcurrentDriver driver(spec, 11, config.num_objects);
  const sim::SimStats stats = simulator.run(driver);

  std::printf(
      "%s: %zu ops simulated, acc %.2f, %zu inter-node messages, "
      "mean latency %.1f\n",
      protocols::to_string(kind), stats.measured_ops + stats.warmup_ops,
      stats.acc(), stats.messages, stats.mean_latency());
  std::printf("trace: %llu events recorded (%llu dropped by the ring)\n",
              static_cast<unsigned long long>(recorder.total()),
              static_cast<unsigned long long>(recorder.dropped()));

  recorder.write_chrome_trace("drsm_sim.trace.json", 10.0);
  recorder.write_jsonl("drsm_sim.trace.jsonl");
  std::printf(
      "wrote drsm_sim.trace.json (load in ui.perfetto.dev) and "
      "drsm_sim.trace.jsonl\n\n");

  std::printf("metrics snapshot:\n%s",
              metrics.to_json().dump(2).c_str());
  return 0;
}
