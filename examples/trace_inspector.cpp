// trace_inspector — prints the message-level trace of individual shared
// memory operations, reproducing the paper's Figures 2-4 (the messages in
// traces tr2, tr3/tr4 and tr6 of the Write-Through protocol) and the
// equivalent traces of any other protocol.
//
// Operations run atomically (the analysis regime), so each operation's
// trace prints as one contiguous block with its exact communication cost.
// The block is rendered from the structured event stream (obs::
// TraceRecorder attached via SequentialRuntime::set_sink), so what is
// printed — messages *and* copy-state transitions — is exactly what the
// Chrome-trace/JSONL exporters would emit for the same run.
//
// Usage: trace_inspector [protocol]     (default: write-through)
#include <cstdio>
#include <vector>

#include "obs/trace.h"
#include "protocols/protocol.h"
#include "sim/sequential.h"

using namespace drsm;

namespace {

constexpr std::size_t kN = 3;

const char* node_name(NodeId node) {
  static const char* names[] = {"client0", "client1", "client2",
                                "sequencer"};
  return node <= kN ? names[node] : "?";
}

/// Prints the events recorded since `from`, message sends and state
/// transitions only (receives duplicate the sends in the atomic regime).
void print_events(const obs::TraceRecorder& recorder, std::size_t from) {
  for (std::size_t i = from; i < recorder.size(); ++i) {
    const obs::TraceEvent& event = recorder.event(i);
    switch (event.kind) {
      case obs::EventKind::kMsgSend: {
        fsm::Message msg;
        msg.token = event.token;
        msg.value = event.value;
        msg.version = event.version;
        msg.hops = event.hops;
        msg.sender = event.node;
        std::printf("     %-9s -> %-9s  %s\n", node_name(event.node),
                    node_name(event.peer), msg.debug_string().c_str());
        break;
      }
      case obs::EventKind::kStateTransition:
        std::printf("     %-9s state %s -> %s\n", node_name(event.node),
                    event.detail, event.detail2);
        break;
      default:
        break;  // op issue/complete framing is printed by the caller
    }
  }
}

struct ScriptOp {
  NodeId node;
  fsm::OpKind op;
};

void inspect(protocols::ProtocolKind kind,
             const std::vector<ScriptOp>& script, const char* caption) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  sim::SequentialRuntime runtime(kind, config, {0, 1, 2});
  obs::TraceRecorder recorder;
  runtime.set_sink(&recorder);

  std::printf("-- %s\n", caption);
  std::uint64_t value = 100;
  for (const ScriptOp& op : script) {
    std::printf("   %s %s:\n", node_name(op.node), fsm::to_string(op.op));
    const std::size_t mark = recorder.size();
    const sim::OpResult result = runtime.execute(op.node, op.op, ++value);
    print_events(recorder, mark);
    std::printf("     => cost %.0f, %zu messages\n", result.cost,
                result.messages);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  protocols::ProtocolKind kind = protocols::ProtocolKind::kWriteThrough;
  if (argc > 1) {
    try {
      kind = protocols::protocol_from_string(argv[1]);
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  std::printf(
      "Message traces under %s (N=%zu clients + sequencer, S=100, P=30)\n\n",
      protocols::to_string(kind), kN);

  using fsm::OpKind;
  // Figure 2: a client read miss (trace tr2 for Write-Through: R-PER to the
  // sequencer, R-GNT with the user information back; cost S+2).
  inspect(kind, {{0, OpKind::kRead}},
          "cold read at client0 (paper Fig. 2, trace tr2)");

  // Figure 3: a client write with every replica valid (trace tr3:
  // W-PER(w) to the sequencer, W-INV to the other N-1 clients; cost P+N).
  inspect(kind,
          {{0, OpKind::kRead},
           {1, OpKind::kRead},
           {2, OpKind::kRead},
           {0, OpKind::kWrite}},
          "reads everywhere, then write at client0 (paper Fig. 3, tr3)");

  // Figure 4: the sequencer's own write (trace tr6: N invalidations).
  inspect(kind,
          {{0, OpKind::kRead}, {static_cast<NodeId>(kN), OpKind::kWrite}},
          "read at client0, then write at the sequencer (Fig. 4, tr6)");

  // Dirty-data interaction: two writes then a third-party read, which in
  // the ownership protocols recalls/flushes the dirty copy.
  inspect(kind,
          {{0, OpKind::kWrite}, {0, OpKind::kWrite}, {1, OpKind::kRead}},
          "write twice at client0, then read at client1");
  return 0;
}
