// trace_advisor — end-to-end workload analysis from a recorded trace:
// estimate the paper's workload parameters from event frequencies,
// predict acc for all eight protocols with the exact model, and recommend
// a per-object protocol placement.
//
// Usage:
//   trace_advisor <trace-file>     analyse a saved trace (see
//                                  workload/trace_io.h for the format)
//   trace_advisor --demo           record a synthetic demo trace to
//                                  /tmp/drsm_demo.trace and analyse it
#include <cstdio>
#include <string>

#include "analytic/predictor.h"
#include "support/text.h"
#include "workload/trace_io.h"

using namespace drsm;

namespace {

workload::OperationTrace demo_trace(const std::string& path) {
  // Two phases over three objects, recorded through the generators.
  workload::OperationTrace trace;
  trace.num_clients = 4;
  trace.num_objects = 3;
  workload::GlobalSequenceGenerator shared(
      workload::read_disturbance(0.08, 0.25, 3), 3, 1);
  workload::GlobalSequenceGenerator priv(workload::ideal_workload(0.6), 4,
                                         1);
  workload::GlobalSequenceGenerator contended(
      workload::write_disturbance(0.3, 0.15, 2), 5, 1);
  Rng rng(6);
  for (int i = 0; i < 30000; ++i) {
    const ObjectId object = static_cast<ObjectId>(rng.uniform_index(3));
    workload::TraceEntry entry =
        object == 0 ? shared.next()
                    : (object == 1 ? priv.next() : contended.next());
    entry.object = object;
    trace.entries.push_back(entry);
  }
  workload::save_trace_file(path, trace);
  std::printf("recorded demo trace -> %s\n\n", path.c_str());
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  workload::OperationTrace trace;
  try {
    if (argc > 1 && std::string(argv[1]) != "--demo") {
      trace = workload::load_trace_file(argv[1]);
    } else {
      trace = demo_trace("/tmp/drsm_demo.trace");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("trace: %zu operations, %zu clients, %zu objects\n\n",
              trace.entries.size(), trace.num_clients, trace.num_objects);

  // Estimated parameters (Section 4.2: relative frequencies of events).
  const auto estimate = trace.estimate_parameters();
  std::printf("estimated overall write probability p-hat = %.3f\n",
              estimate.write_probability);
  for (NodeId node = 0; node <= trace.num_clients; ++node) {
    if (estimate.node_read_share[node] + estimate.node_write_share[node] <=
        0.0)
      continue;
    std::printf("  node %u: read share %.3f, write share %.3f\n", node,
                estimate.node_read_share[node],
                estimate.node_write_share[node]);
  }

  sim::SystemConfig config;
  config.num_clients = trace.num_clients;
  config.costs.s = 200.0;
  config.costs.p = 30.0;
  std::printf("\ncost model: S=%.0f, P=%.0f (edit the source to match your "
              "system)\n\n",
              config.costs.s, config.costs.p);

  std::printf("predicted acc per protocol (whole trace):\n");
  std::vector<std::vector<std::string>> rows;
  for (auto kind : protocols::kAllProtocols) {
    const auto prediction =
        analytic::predict_from_trace(kind, config, trace);
    rows.push_back(
        {protocols::to_string(kind), strfmt("%.2f", prediction.acc)});
  }
  std::printf("%s\n", render_table({"protocol", "acc"}, rows).c_str());

  const auto rec = analytic::recommend_placement(config, trace);
  std::printf("per-object placement:\n");
  std::vector<std::vector<std::string>> placement;
  for (ObjectId j = 0; j < trace.num_objects; ++j)
    placement.push_back(
        {strfmt("%u", j),
         protocols::to_string(rec.object_protocol[j])});
  std::printf("%s", render_table({"object", "protocol"}, placement).c_str());
  std::printf(
      "\nexpected acc: per-object placement %.2f vs best uniform (%s) "
      "%.2f\n",
      rec.acc, protocols::to_string(rec.uniform_best),
      rec.uniform_best_acc);
  return 0;
}
