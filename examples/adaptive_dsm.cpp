// adaptive_dsm — the paper's future-work proposal in action: a shared
// memory that estimates the workload's parameters from run-time
// information and switches to the analytically cheapest protocol.
//
// The program runs three workload phases with very different sharing
// patterns and narrates the classifier's decisions, then compares the
// total communication cost against the best and worst static choices.
#include <cstdio>

#include "adaptive/selector.h"
#include "workload/generator.h"

using namespace drsm;

namespace {

constexpr std::size_t kClients = 4;
constexpr std::size_t kObjects = 8;
constexpr std::size_t kPhaseOps = 8000;

struct Phase {
  const char* description;
  workload::WorkloadSpec spec;
};

std::vector<Phase> make_phases() {
  return {
      {"producer/consumers: client 0 writes rarely, everyone reads",
       workload::read_disturbance(0.05, 0.25, 3)},
      {"hot private data: client 0 read-writes, nobody else touches it",
       workload::ideal_workload(0.7)},
      {"write contention: several writers updating the same objects",
       workload::write_disturbance(0.35, 0.15, 2)},
  };
}

template <typename Memory>
double run_phases(Memory& memory, const char* narrate_for) {
  std::uint64_t value = 0;
  std::uint64_t seed = 90;
  for (const Phase& phase : make_phases()) {
    if (narrate_for) std::printf("phase: %s\n", phase.description);
    workload::GlobalSequenceGenerator gen(phase.spec, ++seed, kObjects);
    for (std::size_t i = 0; i < kPhaseOps; ++i) {
      const auto op = gen.next();
      if (op.op == fsm::OpKind::kWrite)
        memory.write(op.node, op.object, ++value);
      else
        memory.read(op.node, op.object);
    }
    if constexpr (requires { memory.current_protocol(); }) {
      if (narrate_for)
        std::printf("  -> %s settled on: %s\n\n", narrate_for,
                    protocols::to_string(memory.current_protocol()));
    }
  }
  if constexpr (requires { memory.memory(); }) {
    return memory.memory().total_cost();
  } else {
    return memory.total_cost();
  }
}

dsm::SharedMemory::Options base_options() {
  dsm::SharedMemory::Options options;
  options.num_clients = kClients;
  options.num_objects = kObjects;
  options.costs.s = 500.0;
  options.costs.p = 20.0;
  return options;
}

}  // namespace

int main() {
  std::printf(
      "Self-tuning DSM: %zu clients, %zu objects, S=500, P=20, "
      "3 phases x %zu ops\n\n",
      kClients, kObjects, kPhaseOps);

  adaptive::AdaptiveSharedMemory::Options adaptive_options;
  adaptive_options.memory = base_options();
  adaptive_options.memory.protocol = protocols::ProtocolKind::kWriteThrough;
  adaptive_options.epoch_ops = 512;
  adaptive_options.window = 1024;
  adaptive::AdaptiveSharedMemory adaptive_memory(adaptive_options);
  const double adaptive_cost = run_phases(adaptive_memory, "classifier");
  std::printf("adaptive total cost: %.0f (%zu protocol switches)\n\n",
              adaptive_cost, adaptive_memory.switches());

  std::printf("static protocols on the same operation stream:\n");
  double best = -1.0, worst = -1.0;
  for (auto kind : protocols::kAllProtocols) {
    auto options = base_options();
    options.protocol = kind;
    dsm::SharedMemory memory(options);
    const double cost = run_phases(memory, nullptr);
    std::printf("  %-16s %12.0f\n", protocols::to_string(kind), cost);
    if (best < 0.0 || cost < best) best = cost;
    if (cost > worst) worst = cost;
  }
  std::printf(
      "\nadaptive=%.0f vs best static=%.0f (%.0f%% of best), "
      "worst static=%.0f\n",
      adaptive_cost, best, 100.0 * adaptive_cost / best, worst);
  return 0;
}
