// Quickstart: the three things drsm does.
//
//  1. Run a program against a replicated shared memory under a chosen
//     coherence protocol, with every message accounted (dsm::SharedMemory).
//  2. Predict the steady-state average communication cost per operation
//     (acc) of any (protocol, workload) pair analytically — the paper's
//     contribution, automated (analytic::AccSolver).
//  3. Validate the prediction against a discrete-event simulation of the
//     full message-passing system (sim::EventSimulator).
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "analytic/solver.h"
#include "dsm/dsm.h"
#include "sim/event_sim.h"
#include "workload/generator.h"

using namespace drsm;

int main() {
  // --- 1. A replicated shared memory -------------------------------------
  // Three client nodes plus a sequencer, four shared objects, Berkeley
  // coherence.  S (object transfer cost) = 100, P (write parameters) = 30.
  dsm::SharedMemory::Options options;
  options.protocol = protocols::ProtocolKind::kBerkeley;
  options.num_clients = 3;
  options.num_objects = 4;
  options.costs.s = 100.0;
  options.costs.p = 30.0;
  dsm::SharedMemory memory(options);

  memory.write(/*node=*/0, /*object=*/2, 42);   // node 0 publishes
  const std::uint64_t seen = memory.read(1, 2); // node 1 observes it
  std::printf("node 1 read object 2 -> %llu (cost of that read: %.0f)\n",
              static_cast<unsigned long long>(seen), memory.last_op_cost());
  memory.read(1, 2);  // now locally replicated: free
  std::printf("second read cost: %.0f (replica hit)\n",
              memory.last_op_cost());

  // --- 2. Analytic prediction --------------------------------------------
  // A read-disturbance workload: client 0 is the activity center (writes
  // with probability p = 0.3), clients 1..2 read with sigma = 0.1 each.
  sim::SystemConfig config;
  config.num_clients = options.num_clients;
  config.costs = options.costs;
  const auto workload_spec = workload::read_disturbance(0.3, 0.1, 2);

  analytic::AccSolver solver(config);
  std::printf("\npredicted steady-state cost per operation (acc):\n");
  for (auto kind : protocols::kAllProtocols)
    std::printf("  %-16s %8.2f\n", protocols::to_string(kind),
                solver.acc(kind, workload_spec));
  const auto best = solver.best_protocol(workload_spec);
  std::printf("cheapest protocol for this workload: %s\n",
              protocols::to_string(best));

  // --- 3. Validate by simulation -----------------------------------------
  sim::SimOptions sim_options;
  sim_options.max_ops = 20000;
  sim_options.warmup_ops = 500;
  sim::EventSimulator simulator(best, config, sim_options);
  workload::ConcurrentDriver driver(workload_spec, /*seed=*/1);
  const sim::SimStats stats = simulator.run(driver);
  std::printf(
      "\nsimulated %-16s acc = %.2f (predicted %.2f) over %zu ops\n",
      protocols::to_string(best), stats.acc(),
      solver.acc(best, workload_spec), stats.measured_ops);
  return 0;
}
