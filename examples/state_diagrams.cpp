// state_diagrams — regenerates the paper's state transition diagrams
// (Figure 1 and Appendix A, Figures 7-12) from the executable protocol
// machines: a breadth-first walk over all reachable global states records
// every transition of a chosen copy (a client's, or the sequencer's) and
// emits a Graphviz digraph per protocol and role.
//
// Usage: state_diagrams [protocol]   (default: all eight)
//        dot -Tpng out.dot            to render
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "protocols/protocol.h"
#include "sim/sequential.h"

using namespace drsm;

namespace {

constexpr std::size_t kN = 3;  // clients
constexpr NodeId kHome = kN;

/// Walks all reachable states and collects the observed copy's transitions
/// as (from, label, to) edges, where the label names the operation that
/// caused the change (own ops vs another node's).
std::set<std::string> collect_edges(protocols::ProtocolKind kind,
                                    NodeId observed) {
  sim::SystemConfig config;
  config.num_clients = kN;
  config.costs.s = 100.0;
  config.costs.p = 30.0;
  sim::SequentialRuntime initial(kind, config, {0, 1});

  std::map<std::vector<std::uint8_t>, sim::SequentialRuntime> seen;
  std::deque<std::vector<std::uint8_t>> frontier;
  const auto add = [&](sim::SequentialRuntime&& rt) {
    auto key = rt.encode_state();
    if (seen.emplace(key, std::move(rt)).second) frontier.push_back(key);
  };
  add(std::move(initial));

  std::set<std::string> edges;
  std::uint64_t value = 0;
  const NodeId actors[] = {0, 1, kHome};
  while (!frontier.empty()) {
    const auto key = frontier.front();
    frontier.pop_front();
    const sim::SequentialRuntime& current = seen.at(key);
    for (NodeId actor : actors) {
      for (fsm::OpKind op : {fsm::OpKind::kRead, fsm::OpKind::kWrite}) {
        sim::SequentialRuntime next = current;
        const std::string before = current.state_name(observed);
        next.execute(actor, op, ++value);
        const std::string after = next.state_name(observed);
        if (before != after) {
          const char* who = actor == observed
                                ? "own"
                                : (actor == kHome ? "sequencer" : "other");
          edges.insert("  \"" + before + "\" -> \"" + after + "\" [label=\"" +
                       who + " " + fsm::to_string(op) + "\"];");
        }
        add(std::move(next));
      }
    }
  }
  if (edges.empty()) {
    // Single-state machines (Dragon, Firefly): show the state alone.
    edges.insert("  \"" +
                 std::string(seen.begin()->second.state_name(observed)) +
                 "\";");
  }
  return edges;
}

void emit(protocols::ProtocolKind kind) {
  std::printf("// %s — client copy (paper Fig. %s)\n",
              protocols::to_string(kind),
              kind == protocols::ProtocolKind::kWriteThrough ? "1"
                                                             : "7-12");
  std::printf("digraph \"%s_client\" {\n  rankdir=LR;\n",
              protocols::to_string(kind));
  for (const std::string& edge : collect_edges(kind, 0))
    std::printf("%s\n", edge.c_str());
  std::printf("}\n\n");

  std::printf("// %s — sequencer copy\n", protocols::to_string(kind));
  std::printf("digraph \"%s_sequencer\" {\n  rankdir=LR;\n",
              protocols::to_string(kind));
  for (const std::string& edge : collect_edges(kind, kHome))
    std::printf("%s\n", edge.c_str());
  std::printf("}\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    try {
      emit(protocols::protocol_from_string(argv[1]));
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    return 0;
  }
  for (auto kind : protocols::kAllProtocols) emit(kind);
  return 0;
}
