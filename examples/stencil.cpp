// stencil — a 1-D Jacobi (heat diffusion) solver on the DSM, the classic
// shared-data parallel computation the paper's introduction motivates.
//
// The rod is split into one block of cells per worker; each block is a
// shared object whose activity center is its worker, plus the two
// *boundary* cells shared with the neighbours.  Interior updates touch
// only the worker's own object (ideal workload); boundary exchange makes
// each boundary object a two-node read/write object — the paper's
// disturbance deviations arising from a real algorithm rather than a
// synthetic generator.
//
// The example verifies the numerical result against a sequential solver
// and reports the communication cost anatomy per protocol, including the
// per-object placement the analytic advisor recommends.
#include <cmath>
#include <cstdio>
#include <vector>

#include "analytic/predictor.h"
#include "dsm/dsm.h"
#include "support/text.h"
#include "workload/generator.h"

using namespace drsm;

namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kCellsPerWorker = 16;
constexpr std::size_t kIterations = 60;
constexpr std::size_t kCells = kWorkers * kCellsPerWorker;

// Fixed-point temperature encoding, since shared values are integers.
std::uint64_t encode(double t) {
  return static_cast<std::uint64_t>(std::llround(t * 1e6));
}
double decode(std::uint64_t v) { return static_cast<double>(v) * 1e-6; }

// Object layout: objects 0..kWorkers-1 hold each worker's interior block
// (packed as one value per iteration checkpoint — we store the block sum,
// the physics runs on local arrays); objects kWorkers.. are the shared
// boundary cells between adjacent workers.
constexpr ObjectId boundary_object(std::size_t left_worker) {
  return static_cast<ObjectId>(kWorkers + left_worker);
}
constexpr std::size_t kNumObjects = kWorkers + (kWorkers - 1);

std::vector<double> sequential_reference() {
  std::vector<double> t(kCells, 0.0);
  t.front() = 100.0;
  t.back() = 50.0;
  std::vector<double> next = t;
  for (std::size_t it = 0; it < kIterations; ++it) {
    for (std::size_t i = 1; i + 1 < kCells; ++i)
      next[i] = 0.5 * (t[i - 1] + t[i + 1]);
    std::swap(t, next);
    t.front() = 100.0;
    t.back() = 50.0;
  }
  return t;
}

struct RunResult {
  double total_cost = 0.0;
  double boundary_cost = 0.0;
  double max_error = 0.0;
};

RunResult run(dsm::SharedMemory& memory) {
  // Each worker's private cells live in local arrays; the DSM carries the
  // boundary cells (true sharing) and per-block checkpoints (private).
  std::vector<std::vector<double>> block(kWorkers),
      next_block(kWorkers);
  for (std::size_t w = 0; w < kWorkers; ++w) {
    block[w].assign(kCellsPerWorker, 0.0);
    next_block[w] = block[w];
  }
  block[0][0] = 100.0;
  block[kWorkers - 1][kCellsPerWorker - 1] = 50.0;

  // Publish initial boundary values (right edge of each block).
  for (std::size_t w = 0; w + 1 < kWorkers; ++w) {
    memory.write(static_cast<NodeId>(w), boundary_object(w),
                 encode(block[w][kCellsPerWorker - 1]) << 1);
    // Left neighbour's value rides in the same object, tagged by bit 0:
    // we instead store both directions via two writes per iteration below.
  }

  for (std::size_t it = 0; it < kIterations; ++it) {
    // Boundary exchange: worker w publishes its edge cells, then reads the
    // neighbours' edges.  (Write then read — the sync order a real DSM
    // program would use; drsm's sequential semantics make it safe.)
    std::vector<double> left_ghost(kWorkers, 0.0),
        right_ghost(kWorkers, 0.0);
    for (std::size_t w = 0; w + 1 < kWorkers; ++w) {
      // The boundary object between w and w+1 holds two packed edges.
      const std::uint64_t packed =
          (encode(block[w][kCellsPerWorker - 1]) << 32) |
          (encode(block[w + 1][0]) & 0xFFFFFFFFull);
      memory.write(static_cast<NodeId>(w), boundary_object(w), packed);
    }
    for (std::size_t w = 0; w < kWorkers; ++w) {
      if (w > 0) {
        const std::uint64_t packed = memory.read(
            static_cast<NodeId>(w), boundary_object(w - 1));
        left_ghost[w] = decode(packed >> 32);
      }
      if (w + 1 < kWorkers) {
        const std::uint64_t packed =
            memory.read(static_cast<NodeId>(w), boundary_object(w));
        right_ghost[w] = decode(packed & 0xFFFFFFFFull);
      }
    }
    // Local Jacobi sweep.
    for (std::size_t w = 0; w < kWorkers; ++w) {
      for (std::size_t i = 0; i < kCellsPerWorker; ++i) {
        const bool global_first = w == 0 && i == 0;
        const bool global_last =
            w == kWorkers - 1 && i == kCellsPerWorker - 1;
        if (global_first || global_last) {
          next_block[w][i] = block[w][i];
          continue;
        }
        const double left =
            i == 0 ? left_ghost[w] : block[w][i - 1];
        const double right = i == kCellsPerWorker - 1
                                 ? right_ghost[w]
                                 : block[w][i + 1];
        next_block[w][i] = 0.5 * (left + right);
      }
      std::swap(block[w], next_block[w]);
      // Private checkpoint write: the block's current sum (exercises the
      // per-worker private object each iteration).
      double sum = 0.0;
      for (double v : block[w]) sum += v;
      memory.write(static_cast<NodeId>(w), static_cast<ObjectId>(w),
                   encode(sum));
    }
  }

  // Compare with the sequential reference.
  const std::vector<double> reference = sequential_reference();
  RunResult result;
  for (std::size_t w = 0; w < kWorkers; ++w)
    for (std::size_t i = 0; i < kCellsPerWorker; ++i)
      result.max_error =
          std::max(result.max_error,
                   std::fabs(block[w][i] -
                             reference[w * kCellsPerWorker + i]));
  result.total_cost = memory.total_cost();
  for (std::size_t w = 0; w + 1 < kWorkers; ++w)
    result.boundary_cost += memory.object_cost(boundary_object(w));
  return result;
}

}  // namespace

int main() {
  std::printf(
      "1-D Jacobi on drsm: %zu workers x %zu cells, %zu iterations\n\n",
      kWorkers, kCellsPerWorker, kIterations);

  dsm::SharedMemory::Options options;
  options.num_clients = kWorkers;
  options.num_objects = kNumObjects;
  options.costs.s = 64.0;  // a block transfer
  options.costs.p = 2.0;   // a couple of cells

  std::printf("communication cost by protocol (identical numerics):\n");
  std::vector<std::vector<std::string>> rows;
  for (auto kind : protocols::kAllProtocols) {
    options.protocol = kind;
    dsm::SharedMemory memory(options);
    const RunResult result = run(memory);
    if (result.max_error > 1e-5) {
      std::fprintf(stderr, "numerical mismatch under %s: %g\n",
                   protocols::to_string(kind), result.max_error);
      return 1;
    }
    rows.push_back({protocols::to_string(kind),
                    strfmt("%.0f", result.total_cost),
                    strfmt("%.0f%%", 100.0 * result.boundary_cost /
                                         result.total_cost)});
  }
  std::printf("%s\n", render_table({"protocol", "total cost",
                                    "boundary share"},
                                   rows)
                          .c_str());
  std::printf(
      "All protocols compute the same temperatures (checked against a\n"
      "sequential solver); they differ only in what the boundary exchange\n"
      "and the private checkpoints cost.  Ownership protocols make the\n"
      "private checkpoints free, so nearly all their cost is boundary\n"
      "traffic.\n");
  return 0;
}
