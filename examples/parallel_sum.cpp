// parallel_sum — a small parallel program written against the DSM API:
// N worker nodes accumulate partial sums into per-worker shared objects
// (good locality) and then a coordinator reduces them through a shared
// result object (true sharing).  The example shows how the data layout
// maps onto the paper's workload model: the partial-sum objects behave
// like ideal-workload objects (one activity center each), the result
// object like a read-disturbed one — and the protocol choice matters
// accordingly.
#include <cstdio>
#include <numeric>
#include <vector>

#include "dsm/dsm.h"
#include "support/text.h"

using namespace drsm;

namespace {

constexpr std::size_t kWorkers = 4;           // client nodes
constexpr std::size_t kItemsPerWorker = 250;  // work items per node
constexpr std::size_t kRounds = 8;            // reduction rounds

// Object layout: objects 0..kWorkers-1 are per-worker accumulators,
// object kWorkers is the shared result.
constexpr ObjectId result_object() { return kWorkers; }

double run(protocols::ProtocolKind kind, bool print_layout) {
  dsm::SharedMemory::Options options;
  options.protocol = kind;
  options.num_clients = kWorkers;
  options.num_objects = kWorkers + 1;
  options.costs.s = 200.0;
  options.costs.p = 10.0;
  dsm::SharedMemory memory(options);

  std::uint64_t expected = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Each worker accumulates locally into its own shared object.
    for (NodeId worker = 0; worker < kWorkers; ++worker) {
      std::uint64_t acc = 0;
      for (std::size_t item = 0; item < kItemsPerWorker; ++item) {
        acc += worker + item + round;  // the "computation"
        memory.write(worker, worker, acc);
      }
    }
    // Worker 0 acts as the coordinator: reads every partial sum and
    // publishes the total; the others read the shared result.
    std::uint64_t total = 0;
    for (NodeId worker = 0; worker < kWorkers; ++worker)
      total += memory.read(0, worker);
    memory.write(0, result_object(), total);
    for (NodeId worker = 1; worker < kWorkers; ++worker) {
      const std::uint64_t seen = memory.read(worker, result_object());
      if (seen != total) {
        std::fprintf(stderr, "coherence violation: %llu != %llu\n",
                     static_cast<unsigned long long>(seen),
                     static_cast<unsigned long long>(total));
        std::exit(1);
      }
    }
    expected = total;
  }

  if (print_layout) {
    std::printf("final total: %llu (verified at every worker)\n",
                static_cast<unsigned long long>(expected));
    std::printf("per-object communication cost under %s:\n",
                protocols::to_string(kind));
    for (ObjectId obj = 0; obj <= kWorkers; ++obj)
      std::printf("  object %u (%s): %10.0f\n", obj,
                  obj == result_object() ? "shared result"
                                         : "worker-private accumulator",
                  memory.object_cost(obj));
    std::printf("\n");
  }
  return memory.total_cost();
}

}  // namespace

int main() {
  std::printf(
      "parallel sum on drsm: %zu workers x %zu items x %zu rounds\n\n",
      kWorkers, kItemsPerWorker, kRounds);

  // Show the cost anatomy once, under Berkeley (ownership follows the
  // single writer of each accumulator, so private objects are free).
  run(protocols::ProtocolKind::kBerkeley, /*print_layout=*/true);

  std::printf("total communication cost by protocol:\n");
  std::vector<std::vector<std::string>> rows;
  for (auto kind : protocols::kAllProtocols)
    rows.push_back({protocols::to_string(kind),
                    strfmt("%.0f", run(kind, false))});
  std::printf("%s", render_table({"protocol", "total cost"}, rows).c_str());
  std::printf(
      "\nThe ownership protocols win: every accumulator has exactly one\n"
      "writer (an ideal-workload object), which they serve for free, while\n"
      "write-through pays per write and the update protocols broadcast\n"
      "every accumulation to all nodes.\n");
  return 0;
}
